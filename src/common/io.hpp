// Durable-state primitives (DESIGN.md §9 "Durability model").
//
// Eugene's premise is that the service *caches* trained, calibrated,
// profiled models so clients never pay for retraining (paper §I/§II-B) —
// which makes the on-disk state a first-class citizen. Every artifact the
// serving path depends on is written through this layer:
//
//   * atomic_write_file — temp file + fsync + rename(2) + directory fsync,
//     so a crash at any instant leaves either the complete old file or the
//     complete new file, never a torn mixture.
//   * blob files — a versioned, CRC32-checksummed container
//     ([magic][version][length][payload][crc]); readers surface bad magic,
//     future versions, truncation, and bit flips as typed CorruptionError.
//   * ByteWriter / ByteReader — bounds-checked (de)serialization of the
//     primitive types artifacts are made of; over-reads throw
//     CorruptionError instead of reading garbage.
//
// Byte order is native (like the v1 checkpoint format): artifacts are a
// cache local to one service host, not a wire format.
//
// Failpoint seams (armed by the recovery chaos suite and CI):
//   io.atomic.torn     crash after writing half the temp file (no rename)
//   io.atomic.short    commit a file missing its tail bytes
//   io.atomic.corrupt  commit a file with one bit flipped
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace eugene::io {

/// True iff `path` exists and is a regular file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Writes `n` bytes to `path` atomically: the payload goes to `path + ".tmp"`,
/// is fsynced, and is renamed over `path`; the containing directory is then
/// fsynced so the rename itself is durable. Throws IoError on OS failure.
/// A simulated crash (io.atomic.torn) leaves the partial temp file behind,
/// exactly like a real kill -9 — readers never see it because they only open
/// committed names.
void atomic_write_file(const std::string& path, const std::uint8_t* data, std::size_t n);
void atomic_write_file(const std::string& path, const std::vector<std::uint8_t>& payload);

/// Reads a whole file. Throws IoError when the file cannot be opened or read.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// A validated blob: the stored format version and the raw payload.
struct Blob {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes a blob container to bytes: [magic u32][version u32]
/// [payload length u64][payload][crc32(payload) u32].
[[nodiscard]] std::vector<std::uint8_t> encode_blob(std::uint32_t magic, std::uint32_t version,
                                      const std::vector<std::uint8_t>& payload);

/// Parses and validates an encode_blob container. Throws CorruptionError on
/// bad magic, version > max_version, truncation, trailing bytes, or CRC
/// mismatch. `what` names the artifact in error messages.
[[nodiscard]] Blob decode_blob(const std::vector<std::uint8_t>& bytes, std::uint32_t magic,
                 std::uint32_t max_version, const std::string& what);

/// atomic_write_file of an encode_blob container.
void write_blob_file(const std::string& path, std::uint32_t magic, std::uint32_t version,
                     const std::vector<std::uint8_t>& payload);

/// read_file_bytes + decode_blob.
[[nodiscard]] Blob read_blob_file(const std::string& path, std::uint32_t magic,
                    std::uint32_t max_version, const std::string& what);

/// Append-only serialization buffer for artifact payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }

  /// Length-prefixed string (u64 length + bytes).
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  /// Length-prefixed vector of doubles.
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }

  // resize+memcpy rather than insert(range): GCC 12 -O3 trips false
  // stringop-overflow/restrict warnings on the inlined insert path.
  void raw(const void* data, std::size_t n) {
    if (n == 0) return;
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte span. Every accessor throws
/// CorruptionError (tagged with `what`) instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, std::string what)
      : data_(data), size_(size), what_(std::move(what)) {}
  ByteReader(const std::vector<std::uint8_t>& bytes, std::string what)
      : ByteReader(bytes.data(), bytes.size(), std::move(what)) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
  [[nodiscard]] double f64() { return scalar<double>(); }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = length_prefix(1);
    std::string s;
    if (n != 0) s.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::vector<double> f64_vec() {
    const std::uint64_t n = length_prefix(sizeof(double));
    std::vector<double> v(n);
    // n == 0 gives memcpy a null destination (empty vector) — UB even for
    // zero bytes, and a null source too when reading an empty buffer.
    if (n != 0) std::memcpy(v.data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  /// Copies `n` raw bytes into `dst`.
  void raw_into(void* dst, std::size_t n) {
    need(n);
    if (n != 0) std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Throws CorruptionError if any bytes were left unread (a payload longer
  /// than its schema is as suspect as a truncated one).
  void expect_exhausted() const {
    if (pos_ != size_)
      throw CorruptionError(what_ + ": " + std::to_string(size_ - pos_) +
                            " trailing byte(s) after payload");
  }

 private:
  template <typename T>
  T scalar() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Reads a u64 count and validates that `count * elem_size` bytes follow.
  std::uint64_t length_prefix(std::size_t elem_size) {
    const std::uint64_t n = scalar<std::uint64_t>();
    if (n > remaining() / elem_size)
      throw CorruptionError(what_ + ": length prefix " + std::to_string(n) +
                            " exceeds remaining payload");
    return n;
  }

  void need(std::size_t n) const {
    if (n > remaining())
      throw CorruptionError(what_ + ": truncated payload (need " + std::to_string(n) +
                            " byte(s), have " + std::to_string(remaining()) + ")");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string what_;
};

}  // namespace eugene::io
