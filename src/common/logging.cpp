#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace eugene {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

// Serializes whole lines onto stderr so concurrent loggers never interleave.
// kLogging is the unique leaf rank: EUGENE_LOG is legal under any other lock.
Mutex g_emit_mutex{LockRank::kLogging, "logging::g_emit_mutex"};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    default:              return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : enabled_(level >= log_level() && level != LogLevel::Off), level_(level) {
  if (!enabled_) return;
  // Keep only the basename so log lines stay short.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  stream_ << '[' << tag(level_) << "] " << file << ':' << line << ' ';
}

LogLine::~LogLine() {
  if (!enabled_) return;
  MutexLock lock(g_emit_mutex);
  std::cerr << stream_.str() << '\n';
}

}  // namespace detail
}  // namespace eugene
