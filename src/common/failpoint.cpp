#include "common/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace eugene {
namespace {

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    const std::string piece =
        s.substr(start, end == std::string::npos ? std::string::npos : end - start);
    if (!piece.empty()) out.push_back(piece);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

double parse_double(const std::string& s, const std::string& clause) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    EUGENE_REQUIRE(pos == s.size(), "failpoint spec: trailing junk in '" + clause + "'");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("failpoint spec: bad number in '" + clause + "'");
  }
}

}  // namespace

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();  // NOLINT-new: intentionally leaked singleton
    r->arm_from_env();
    return r;
  }();
  return *registry;
}

namespace detail {
// The EUGENE_FAILPOINT fast path reads g_failpoints_armed without ever
// constructing the registry, so env-armed chaos would otherwise never take
// effect in a process that only *hosts* failpoints. Force the registry (and
// its arm_from_env) into existence at startup when the variable is set.
const bool g_env_probe = [] {
  if (const char* v = std::getenv("EUGENE_FAILPOINTS"); v != nullptr && *v != '\0')
    FailpointRegistry::instance();
  return true;
}();
}  // namespace detail

void FailpointRegistry::arm(const std::string& name, FailpointSpec spec) {
  EUGENE_REQUIRE(!name.empty(), "failpoint: empty name");
  EUGENE_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                 "failpoint '" + name + "': probability outside [0,1]");
  EUGENE_REQUIRE(spec.delay_ms >= 0.0, "failpoint '" + name + "': negative delay");
  MutexLock lock(mutex_);
  for (Armed& a : armed_) {
    if (a.name == name) {
      a.spec = spec;
      a.fires = 0;
      a.rng = Rng(spec.seed);
      return;
    }
  }
  Armed a;
  a.name = name;
  a.spec = spec;
  a.rng = Rng(spec.seed);
  armed_.push_back(std::move(a));
  detail::g_failpoints_armed.store(static_cast<int>(armed_.size()),
                                   std::memory_order_relaxed);
}

void FailpointRegistry::disarm(const std::string& name) {
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].name == name) {
      armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  detail::g_failpoints_armed.store(static_cast<int>(armed_.size()),
                                   std::memory_order_relaxed);
}

void FailpointRegistry::disarm_all() {
  MutexLock lock(mutex_);
  armed_.clear();
  detail::g_failpoints_armed.store(0, std::memory_order_relaxed);
}

std::size_t FailpointRegistry::armed() const {
  MutexLock lock(mutex_);
  return armed_.size();
}

std::size_t FailpointRegistry::fires(const std::string& name) const {
  MutexLock lock(mutex_);
  for (const Armed& a : armed_)
    if (a.name == name) return a.fires;
  return 0;
}

std::size_t FailpointRegistry::arm_from_string(const std::string& spec) {
  std::size_t count = 0;
  for (const std::string& clause : split(spec, ',')) {
    const std::size_t eq = clause.find('=');
    EUGENE_REQUIRE(eq != std::string::npos && eq > 0,
                   "failpoint spec: expected name=kind in '" + clause + "'");
    const std::string name = clause.substr(0, eq);
    const std::vector<std::string> parts = split(clause.substr(eq + 1), ':');
    EUGENE_REQUIRE(!parts.empty(), "failpoint spec: missing kind in '" + clause + "'");

    FailpointSpec s;
    if (parts[0] == "error") {
      s.kind = FailpointKind::kError;
    } else if (parts[0] == "delay") {
      s.kind = FailpointKind::kDelay;
    } else {
      throw InvalidArgument("failpoint spec: unknown kind '" + parts[0] + "' in '" +
                            clause + "' (expected error or delay)");
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::size_t peq = parts[i].find('=');
      EUGENE_REQUIRE(peq != std::string::npos,
                     "failpoint spec: expected key=value in '" + clause + "'");
      const std::string key = parts[i].substr(0, peq);
      const std::string value = parts[i].substr(peq + 1);
      if (key == "p") {
        s.probability = parse_double(value, clause);
      } else if (key == "count") {
        s.max_fires = static_cast<std::int64_t>(parse_double(value, clause));
      } else if (key == "ms") {
        s.delay_ms = parse_double(value, clause);
      } else if (key == "seed") {
        s.seed = static_cast<std::uint64_t>(parse_double(value, clause));
      } else {
        throw InvalidArgument("failpoint spec: unknown key '" + key + "' in '" +
                              clause + "'");
      }
    }
    arm(name, s);
    ++count;
  }
  return count;
}

std::size_t FailpointRegistry::arm_from_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') return 0;
  return arm_from_string(value);
}

FailpointRegistry::Armed* FailpointRegistry::find_locked(const char* name) {
  for (Armed& a : armed_)
    if (a.name == name) return &a;
  return nullptr;
}

bool FailpointRegistry::draw_locked(Armed& a) {
  if (a.spec.max_fires >= 0 &&
      a.fires >= static_cast<std::size_t>(a.spec.max_fires))
    return false;
  if (a.spec.probability < 1.0 && !a.rng.bernoulli(a.spec.probability))
    return false;
  ++a.fires;
  return true;
}

void FailpointRegistry::evaluate(const char* name) {
  FailpointKind kind = FailpointKind::kError;
  double delay_ms = 0.0;
  {
    MutexLock lock(mutex_);
    Armed* a = find_locked(name);
    if (a == nullptr || !draw_locked(*a)) return;
    kind = a->spec.kind;
    delay_ms = a->spec.delay_ms;
  }
  // Act outside the lock so a sleeping failpoint never blocks arming,
  // disarming, or other sites.
  if (kind == FailpointKind::kDelay) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
    return;
  }
  throw FailpointError(std::string("injected failure at failpoint '") + name + "'");
}

bool FailpointRegistry::should_fire(const char* name) {
  MutexLock lock(mutex_);
  Armed* a = find_locked(name);
  return a != nullptr && draw_locked(*a);
}

}  // namespace eugene
