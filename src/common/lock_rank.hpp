// Lock-rank deadlock-order analysis (DESIGN.md §10 "Analysis & verification").
//
// TSan proves the *absence of data races it observed*; it cannot prove the
// absence of lock-order inversions that never interleaved in a test run. This
// header makes deadlock-freedom a checked property instead of test-suite
// luck: every eugene::Mutex carries a static *rank* from the registry below,
// and debug builds maintain a per-thread set of held locks, enforcing that
// ranks are acquired in strictly increasing order. Any A→B / B→A inversion is
// caught the first time either side executes — on any schedule, under any
// sanitizer, in any single-threaded test — because the check needs only one
// thread to walk one side of the cycle.
//
// The rank registry (keep sorted by rank; scripts/check_invariants.py
// enforces that every Mutex construction in src/ names one of these):
//
//   rank   domain              acquired while holding
//   ----   ------------------  -------------------------------------------
//    100   kModelRegistry      nothing (outermost serving-path lock)
//    150   kLifecycle          nothing (admission gate + drain wait; may be
//                              taken before any serving-path lock, so it
//                              sits between the registry writer lock and
//                              the usage meter)
//    200   kUsageMeter         nothing today; may nest under the registry
//    300   kThreadPool         nothing (queue lock; tasks run unlocked)
//    310   kChannel            nothing (in-memory MPMC queue)
//    320   kFifo               nothing (per-end pipe framing lock)
//    330   kHealth             nothing (breaker EWMA state; the
//                              health.breaker.trip failpoint and EUGENE_LOG
//                              both fire while it is held)
//    340   kTrace              nothing (telemetry ring buffer; recording a
//                              span event is legal under any subsystem lock
//                              ranked below)
//    350   kMetrics            nothing (instrument registration/snapshot;
//                              instrument *updates* are lock-free atomics)
//    900   kFailpointRegistry  any subsystem lock — EUGENE_FAILPOINT sites
//                              fire inside locked regions (e.g. the usage
//                              journal appends under kUsageMeter)
//   1000   kLogging            anything — EUGENE_LOG is legal everywhere,
//                              so the emit lock is the unique leaf
//
// Cost model: with EUGENE_LOCK_RANK_CHECKS=0 (the Release preset) the
// checker compiles away entirely — eugene::Mutex::lock() is std::mutex::lock()
// and the rank/name constructor arguments are discarded; BM_MutexRankedLock
// in bench_micro.cpp pins this at parity with a raw std::mutex. With checks
// on (all non-Release builds, including tier-1's default RelWithDebInfo and
// the asan-ubsan/tsan presets) each acquire/release is a thread-local vector
// push/pop plus one rank comparison.
//
// On violation the checker reports both sides: the full held-lock stack of
// the current thread (each entry with the file:line that acquired it) and
// the offending acquisition site, then aborts — unless a test installed a
// capture handler via set_violation_handler().
#pragma once

#include <cstdint>
#include <source_location>
#include <string>

namespace eugene {

/// The static rank registry: a total order over every mutex domain in src/.
/// A thread may acquire a mutex only while every mutex it already holds has
/// a strictly lower rank (monotone acquisition ⇒ the wait-for graph is
/// acyclic ⇒ no deadlock). New domains must be inserted here with a comment
/// saying what they may be held under.
enum class LockRank : std::uint16_t {
  kModelRegistry = 100,     ///< serving/registry.hpp — entry table
  kLifecycle = 150,         ///< common/lifecycle.hpp — server state machine +
                            ///< in-flight count; nothing nests inside it
  kUsageMeter = 200,        ///< serving/usage.hpp — accumulators + journal fd
  kThreadPool = 300,        ///< common/thread_pool.hpp — work queue
  kChannel = 310,           ///< common/channel.hpp — MPMC queue state
  kFifo = 320,              ///< common/fifo_channel.hpp — frame serialization
  kHealth = 330,            ///< common/health.hpp — breaker EWMAs; failpoint +
                            ///< logging fire under it, nothing else nests in
  kTrace = 340,             ///< common/trace.hpp — span-event ring buffer;
                            ///< nothing nests inside it
  kMetrics = 350,           ///< common/metrics.hpp — instrument table; updates
                            ///< are lock-free, only registration/snapshot lock
  kFailpointRegistry = 900, ///< common/failpoint.hpp — evaluated under locks
  kLogging = 1000,          ///< common/logging.cpp — the leaf: legal anywhere
};

/// Human-readable name of a registered rank ("kChannel"), or "?" for a value
/// outside the registry (tests may mint ad-hoc ranks).
const char* lock_rank_name(LockRank rank);

namespace lock_rank {

/// Receives the formatted violation report instead of the default
/// stderr-print-then-abort. Install from tests to assert on report contents.
using ViolationHandler = void (*)(const std::string& report);

/// Installs `handler` (nullptr restores the default abort behavior) and
/// returns the previous handler.
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Records that the current thread acquired `mutex` with `rank`. Fires the
/// violation handler when `rank` is not strictly greater than every rank the
/// thread already holds. Called by eugene::Mutex, never directly.
void note_acquire(std::uint16_t rank, const char* name, const void* mutex,
                  std::source_location loc);

/// Records a successful try_lock. Tracked but *not* rank-enforced: a
/// non-blocking acquisition cannot participate in a deadlock cycle, and
/// try-then-back-off is the sanctioned escape hatch for genuinely
/// order-free designs.
void note_acquire_nonblocking(std::uint16_t rank, const char* name,
                              const void* mutex, std::source_location loc);

/// Records that the current thread released `mutex` (any order, not just
/// LIFO — guards may outlive each other arbitrarily).
void note_release(const void* mutex);

/// Number of locks the current thread holds (test introspection).
std::size_t held_count();

}  // namespace lock_rank
}  // namespace eugene
