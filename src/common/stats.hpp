// Small numeric helpers used across calibration, scheduling, and evaluation.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace eugene {

/// Arithmetic mean; requires a non-empty range.
inline double mean(std::span<const double> xs) {
  EUGENE_REQUIRE(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

/// Population variance (divides by N); requires a non-empty range.
///
/// Welford's single-pass update: one walk over the range (the previous form
/// walked it twice via mean()) and numerically stable for data with a large
/// common offset, where accumulating (x - m)² after a separately rounded
/// mean loses precision. Stats.VarianceWelfordMatchesTwoPass pins agreement
/// with the two-pass form within eps on ordinary data and exactness on
/// offset data.
inline double variance(std::span<const double> xs) {
  EUGENE_REQUIRE(!xs.empty(), "variance of empty range");
  double m = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
  }
  return m2 / static_cast<double>(xs.size());
}

/// Population standard deviation.
inline double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

/// Index of the largest element; ties resolve to the first maximum.
inline std::size_t argmax(std::span<const float> xs) {
  EUGENE_REQUIRE(!xs.empty(), "argmax of empty range");
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i)
    if (xs[i] > xs[best]) best = i;
  return best;
}

/// Numerically stable softmax over a logit vector.
inline std::vector<float> softmax(std::span<const float> logits) {
  EUGENE_REQUIRE(!logits.empty(), "softmax of empty range");
  float max_logit = logits[0];
  for (float v : logits) max_logit = std::max(max_logit, v);
  std::vector<float> out(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    sum += out[i];
  }
  for (float& v : out) v = static_cast<float>(v / sum);
  return out;
}

/// Shannon entropy (nats) of a probability vector. Zero entries contribute 0.
inline double entropy(std::span<const float> probs) {
  double h = 0.0;
  for (float p : probs)
    if (p > 0.0f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
  return h;
}

/// Clamps x into [lo, hi].
inline double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Coefficient of determination of predictions vs. ground truth.
/// Returns 1 for a perfect fit, 0 for predicting the mean, negative for worse.
inline double r_squared(std::span<const double> truth, std::span<const double> pred) {
  EUGENE_REQUIRE(truth.size() == pred.size(), "r_squared: size mismatch");
  EUGENE_REQUIRE(!truth.empty(), "r_squared: empty ranges");
  const double m = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

/// Mean absolute error of predictions vs. ground truth.
inline double mean_absolute_error(std::span<const double> truth,
                                  std::span<const double> pred) {
  EUGENE_REQUIRE(truth.size() == pred.size(), "mae: size mismatch");
  EUGENE_REQUIRE(!truth.empty(), "mae: empty ranges");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) acc += std::abs(truth[i] - pred[i]);
  return acc / static_cast<double>(truth.size());
}

/// Incremental mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance; zero until two samples are seen.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }

  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace eugene
