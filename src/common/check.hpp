// Runtime contract checks with message streaming.
//
//   EUGENE_CHECK(ptr != nullptr) << "stage " << s << " has no head";
//   EUGENE_CHECK_LT(index, size()) << "task id from the wire is bogus";
//   EUGENE_DCHECK_GE(confidence, 0.0);   // debug builds only
//
// EUGENE_CHECK* always run and throw eugene::InternalError on failure, with
// file:line, the stringified expression, the operand values (for the
// comparison forms), and whatever was streamed after the macro. They guard
// invariants whose violation means a bug inside Eugene — as opposed to
// EUGENE_REQUIRE (common/error.hpp), which validates caller-supplied input
// and throws eugene::InvalidArgument.
//
// EUGENE_DCHECK* compile to nothing when NDEBUG is defined (the operands are
// type-checked but never evaluated), so they are free in release builds and
// safe to put on hot paths.
//
// Caveat: the comparison forms evaluate their operands a second time on the
// *failure* path to render the values; don't put side effects in operands.
#pragma once

#include <sstream>
#include <string>

#include "common/error.hpp"

namespace eugene::detail {

/// Renders "(lhs vs. rhs)" for a failed comparison check.
template <typename A, typename B>
std::string check_op_values(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs. " << b << ")";
  return os.str();
}

/// Accumulates the streamed message of a failing check and throws
/// eugene::InternalError from its destructor (at the end of the full
/// statement, once the whole message has been streamed). Only ever
/// constructed on a failure path.
class CheckFailMessage {
 public:
  CheckFailMessage(const char* file, int line, const char* expr,
                   std::string values)
      : file_(file), line_(line), expr_(expr), values_(std::move(values)) {}

  CheckFailMessage(const CheckFailMessage&) = delete;
  CheckFailMessage& operator=(const CheckFailMessage&) = delete;

  // NOLINTNEXTLINE(bugprone-exception-escape): throwing is this type's job.
  [[noreturn]] ~CheckFailMessage() noexcept(false) {
    std::string msg = values_;
    const std::string streamed = stream_.str();
    if (!streamed.empty()) {
      if (!msg.empty()) msg += ' ';
      msg += streamed;
    }
    raise<InternalError>(file_, line_, expr_, msg);
  }

  template <typename T>
  CheckFailMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::string values_;
  std::ostringstream stream_;
};

}  // namespace eugene::detail

// The `if (ok) {} else stream` shape makes the streamed message lazy (nothing
// is formatted unless the check fails) and keeps the macro usable as a plain
// statement; the internal else also prevents dangling-else surprises.
#define EUGENE_CHECK(cond)                                            \
  if (cond) {                                                         \
  } else                                                              \
    ::eugene::detail::CheckFailMessage(__FILE__, __LINE__, #cond, {})

#define EUGENE_INTERNAL_CHECK_OP(a, b, op)                            \
  if ((a)op(b)) {                                                     \
  } else                                                              \
    ::eugene::detail::CheckFailMessage(                               \
        __FILE__, __LINE__, #a " " #op " " #b,                        \
        ::eugene::detail::check_op_values((a), (b)))

#define EUGENE_CHECK_EQ(a, b) EUGENE_INTERNAL_CHECK_OP(a, b, ==)
#define EUGENE_CHECK_NE(a, b) EUGENE_INTERNAL_CHECK_OP(a, b, !=)
#define EUGENE_CHECK_LT(a, b) EUGENE_INTERNAL_CHECK_OP(a, b, <)
#define EUGENE_CHECK_LE(a, b) EUGENE_INTERNAL_CHECK_OP(a, b, <=)
#define EUGENE_CHECK_GT(a, b) EUGENE_INTERNAL_CHECK_OP(a, b, >)
#define EUGENE_CHECK_GE(a, b) EUGENE_INTERNAL_CHECK_OP(a, b, >=)

// Debug-only variants. The disabled form keeps the operands and the streamed
// message fully type-checked but guarantees zero evaluation at runtime (the
// `true ||` short-circuits before touching them).
#ifdef NDEBUG
#define EUGENE_INTERNAL_DCHECK(cond, expr)                            \
  if (true || (cond)) {                                               \
  } else                                                              \
    ::eugene::detail::CheckFailMessage(__FILE__, __LINE__, expr, {})

#define EUGENE_DCHECK(cond) EUGENE_INTERNAL_DCHECK(cond, #cond)
#define EUGENE_DCHECK_EQ(a, b) EUGENE_INTERNAL_DCHECK((a) == (b), #a " == " #b)
#define EUGENE_DCHECK_NE(a, b) EUGENE_INTERNAL_DCHECK((a) != (b), #a " != " #b)
#define EUGENE_DCHECK_LT(a, b) EUGENE_INTERNAL_DCHECK((a) < (b), #a " < " #b)
#define EUGENE_DCHECK_LE(a, b) EUGENE_INTERNAL_DCHECK((a) <= (b), #a " <= " #b)
#define EUGENE_DCHECK_GT(a, b) EUGENE_INTERNAL_DCHECK((a) > (b), #a " > " #b)
#define EUGENE_DCHECK_GE(a, b) EUGENE_INTERNAL_DCHECK((a) >= (b), #a " >= " #b)
#else
#define EUGENE_DCHECK(cond) EUGENE_CHECK(cond)
#define EUGENE_DCHECK_EQ(a, b) EUGENE_CHECK_EQ(a, b)
#define EUGENE_DCHECK_NE(a, b) EUGENE_CHECK_NE(a, b)
#define EUGENE_DCHECK_LT(a, b) EUGENE_CHECK_LT(a, b)
#define EUGENE_DCHECK_LE(a, b) EUGENE_CHECK_LE(a, b)
#define EUGENE_DCHECK_GT(a, b) EUGENE_CHECK_GT(a, b)
#define EUGENE_DCHECK_GE(a, b) EUGENE_CHECK_GE(a, b)
#endif
