// Clang thread-safety annotations plus an annotated mutex wrapper.
//
// Clang's `-Wthread-safety` analysis statically proves that every access to a
// mutex-protected member happens with the right lock held — but only for
// types carrying the `capability` attribute, which libstdc++'s std::mutex
// does not. This header provides:
//
//   * EUGENE_GUARDED_BY / EUGENE_REQUIRES / EUGENE_EXCLUDES / ... macros that
//     expand to the Clang attributes (and to nothing on GCC/MSVC);
//   * eugene::Mutex — a std::mutex wrapper carrying the capability attribute
//     and a mandatory LockRank (common/lock_rank.hpp); debug builds enforce
//     monotone rank acquisition, turning any lock-order inversion into an
//     immediate abort with both acquisition stacks;
//   * eugene::MutexLock — the RAII guard (a scoped capability);
//   * eugene::CondVar — a condition variable that waits on eugene::Mutex.
//
// Convention (see DESIGN.md "Correctness tooling"): every member field that
// is protected by a mutex is declared `EUGENE_GUARDED_BY(mutex_)`; private
// helpers that assume the lock is held are declared
// `EUGENE_REQUIRES(mutex_)`; public methods that take the lock themselves
// are declared `EUGENE_EXCLUDES(mutex_)` when re-entry would deadlock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <source_location>

#include "common/lock_rank.hpp"

// EUGENE_LOCK_RANK_CHECKS gates the runtime deadlock-order checker. The
// build defines it explicitly (see the root CMakeLists.txt: ON everywhere
// except the Release preset); standalone compilations fall back to NDEBUG.
#if !defined(EUGENE_LOCK_RANK_CHECKS)
#if defined(NDEBUG)
#define EUGENE_LOCK_RANK_CHECKS 0
#else
#define EUGENE_LOCK_RANK_CHECKS 1
#endif
#endif

#if defined(__clang__)
#define EUGENE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EUGENE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define EUGENE_CAPABILITY(x) EUGENE_THREAD_ANNOTATION(capability(x))
#define EUGENE_SCOPED_CAPABILITY EUGENE_THREAD_ANNOTATION(scoped_lockable)
#define EUGENE_GUARDED_BY(x) EUGENE_THREAD_ANNOTATION(guarded_by(x))
#define EUGENE_PT_GUARDED_BY(x) EUGENE_THREAD_ANNOTATION(pt_guarded_by(x))
#define EUGENE_REQUIRES(...) \
  EUGENE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EUGENE_EXCLUDES(...) EUGENE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define EUGENE_ACQUIRE(...) \
  EUGENE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EUGENE_RELEASE(...) \
  EUGENE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EUGENE_TRY_ACQUIRE(...) \
  EUGENE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EUGENE_ACQUIRED_BEFORE(...) \
  EUGENE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EUGENE_ACQUIRED_AFTER(...) \
  EUGENE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define EUGENE_RETURN_CAPABILITY(x) EUGENE_THREAD_ANNOTATION(lock_returned(x))
#define EUGENE_NO_THREAD_SAFETY_ANALYSIS \
  EUGENE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace eugene {

/// std::mutex with the Clang `capability` attribute so `-Wthread-safety`
/// can reason about it, plus a mandatory deadlock-analysis rank. Satisfies
/// BasicLockable/Lockable.
///
/// Construction requires a LockRank from the registry in common/lock_rank.hpp
/// (scripts/check_invariants.py rejects unranked mutexes in src/). In builds
/// with EUGENE_LOCK_RANK_CHECKS=1 every lock() verifies the rank is strictly
/// above everything the thread already holds; Release builds compile the
/// checker away so lock()/unlock() are exactly std::mutex (BM_MutexRankedLock
/// in bench_micro.cpp holds the hot path at parity).
class EUGENE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name = "") {
#if EUGENE_LOCK_RANK_CHECKS
    rank_ = static_cast<std::uint16_t>(rank);
    name_ = name;
#else
    (void)rank;
    (void)name;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current())
      EUGENE_ACQUIRE() {
#if EUGENE_LOCK_RANK_CHECKS
    lock_rank::note_acquire(rank_, name_, this, loc);
#else
    (void)loc;
#endif
    mu_.lock();
  }

  void unlock() EUGENE_RELEASE() {
    mu_.unlock();
#if EUGENE_LOCK_RANK_CHECKS
    lock_rank::note_release(this);
#endif
  }

  bool try_lock(std::source_location loc = std::source_location::current())
      EUGENE_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if EUGENE_LOCK_RANK_CHECKS
    if (acquired) lock_rank::note_acquire_nonblocking(rank_, name_, this, loc);
#else
    (void)loc;
#endif
    return acquired;
  }

 private:
  std::mutex mu_;
#if EUGENE_LOCK_RANK_CHECKS
  std::uint16_t rank_ = 0;
  const char* name_ = "";
#endif
};

/// RAII lock for eugene::Mutex, visible to the thread-safety analysis as a
/// scoped capability (the analysis knows the mutex is held for the guard's
/// lifetime).
class EUGENE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     std::source_location loc = std::source_location::current())
      EUGENE_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }
  ~MutexLock() EUGENE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with eugene::Mutex. wait() atomically releases
/// and reacquires the mutex; annotation-wise the caller must already hold it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` is true. The caller must hold `mu` (e.g. via a
  /// live MutexLock); `pred` runs with `mu` held.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) EUGENE_REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  /// Blocks until `pred()` is true or `timeout_ms` elapses; returns pred's
  /// final value. Same locking contract as wait().
  template <typename Pred>
  bool wait_for(Mutex& mu, double timeout_ms, Pred pred) EUGENE_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double, std::milli>(timeout_ms),
                        pred);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace eugene
