// Per-target health tracking and circuit breaking (DESIGN.md §11 "Overload &
// health model").
//
// A CircuitBreaker watches one dispatch target (a worker replica, a backend)
// through EWMA estimates of its error rate and stage latency and gates
// dispatch through three states:
//
//   closed    — healthy; every dispatch is allowed. allow() is ONE relaxed
//               atomic load (BM_BreakerClosedPath pins this at parity with a
//               plain std::atomic load), so the breaker can sit on the
//               per-stage hot path.
//   open      — the error-rate or latency EWMA breached its threshold; all
//               dispatch is refused until open_cooldown_ms elapses. The
//               scheduler routes around the target instead of burning retry
//               budget on it.
//   half-open — cooldown expired; probe dispatches are allowed. A run of
//               half_open_probes successes re-closes the breaker; any probe
//               failure re-opens it and restarts the cooldown.
//
// All transitions are observed through explicit `now_ms` arguments so tests
// drive them with a VirtualClock. Thread-safe: a supervisor thread records
// outcomes while other threads consult allow()/state(). The mutex ranks at
// LockRank::kHealth; the `health.breaker.trip` failpoint fires inside the
// locked region (kHealth < kFailpointRegistry), letting chaos tests force a
// trip without manufacturing real errors.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "common/thread_annotations.hpp"

namespace eugene {

/// Breaker thresholds and EWMA shape. Defaults suit per-stage dispatch: a
/// replica erroring on ~half its stages opens within a handful of samples.
struct HealthConfig {
  bool enabled = true;          ///< false: allow() is unconditionally true
  double ewma_alpha = 0.25;     ///< weight of the newest observation
  double error_threshold = 0.4; ///< error-rate EWMA that opens the breaker
  double latency_threshold_ms =
      std::numeric_limits<double>::infinity();  ///< latency EWMA that opens
  std::size_t min_samples = 4;  ///< observations before the breaker may trip
  double open_cooldown_ms = 100.0;   ///< open → half-open delay
  std::size_t half_open_probes = 1;  ///< successes that re-close the breaker
};

/// The three breaker states. Stored in one atomic so the closed-path check
/// never takes the lock.
enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Human-readable state name ("closed" / "open" / "half-open").
const char* breaker_state_name(BreakerState state);

/// Health score + circuit breaker for one dispatch target. See the header
/// comment for the state machine; all methods are thread-safe.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(HealthConfig config = {});

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May a dispatch go to this target now? Closed: one relaxed atomic load,
  /// inlined here so the hot path never pays a call. Open: refused until the
  /// cooldown expires (the expiry itself transitions to half-open under the
  /// lock). Half-open: allowed (a probe).
  bool allow(double now_ms) EUGENE_EXCLUDES(mutex_) {
    if (!config_.enabled) return true;
    if (static_cast<BreakerState>(state_.load(std::memory_order_relaxed)) ==
        BreakerState::kClosed) [[likely]]
      return true;
    return allow_slow(now_ms);
  }

  /// Records a successful dispatch and its observed latency. May trip the
  /// breaker on a latency breach, or re-close it from half-open.
  void record_success(double latency_ms, double now_ms) EUGENE_EXCLUDES(mutex_);

  /// Records a failed dispatch (crash, stage error, abandonment). May trip
  /// the breaker on an error-rate breach; always re-opens from half-open.
  void record_failure(double now_ms) EUGENE_EXCLUDES(mutex_);

  /// Current state (relaxed load; exact under the single-supervisor pattern).
  BreakerState state() const {
    return static_cast<BreakerState>(state_.load(std::memory_order_relaxed));
  }

  /// Error-rate EWMA in [0, 1].
  double error_rate() const EUGENE_EXCLUDES(mutex_);

  /// Latency EWMA in milliseconds (0 until a success is recorded).
  double latency_ewma_ms() const EUGENE_EXCLUDES(mutex_);

  /// Composite health score: lower is healthier. Error rate dominates;
  /// latency breaks ties, so a scheduler sorting by score prefers the
  /// fastest of the reliable targets.
  double score() const EUGENE_EXCLUDES(mutex_);

  /// Times the breaker tripped (closed/half-open → open) since construction.
  std::size_t trips() const EUGENE_EXCLUDES(mutex_);

  const HealthConfig& config() const { return config_; }

 private:
  /// Non-closed states: takes the lock, handles cooldown expiry and probes.
  bool allow_slow(double now_ms) EUGENE_EXCLUDES(mutex_);

  void trip_locked(double now_ms) EUGENE_REQUIRES(mutex_);

  const HealthConfig config_;
  /// The fast-path gate; transitions happen only under mutex_.
  std::atomic<std::uint8_t> state_{static_cast<std::uint8_t>(BreakerState::kClosed)};
  mutable Mutex mutex_{LockRank::kHealth, "CircuitBreaker::mutex_"};
  double error_ewma_ EUGENE_GUARDED_BY(mutex_) = 0.0;
  double latency_ewma_ms_ EUGENE_GUARDED_BY(mutex_) = 0.0;
  std::size_t samples_ EUGENE_GUARDED_BY(mutex_) = 0;
  bool latency_seeded_ EUGENE_GUARDED_BY(mutex_) = false;
  double opened_at_ms_ EUGENE_GUARDED_BY(mutex_) = 0.0;
  std::size_t probe_successes_ EUGENE_GUARDED_BY(mutex_) = 0;
  std::size_t trips_ EUGENE_GUARDED_BY(mutex_) = 0;
};

}  // namespace eugene
