#include "common/lifecycle.hpp"

#include "common/clock.hpp"
#include "common/failpoint.hpp"

namespace eugene {

const char* server_state_name(ServerState state) {
  switch (state) {
    case ServerState::kStarting: return "starting";
    case ServerState::kServing: return "serving";
    case ServerState::kDraining: return "draining";
    case ServerState::kStopped: return "stopped";
  }
  return "?";
}

bool ServerLifecycle::try_admit(std::size_t units) {
  MutexLock lock(mutex_);
  switch (state_) {
    case ServerState::kStarting:
      state_ = ServerState::kServing;  // first admission marks the process live
      [[fallthrough]];
    case ServerState::kServing:
      inflight_ += units;
      return true;
    case ServerState::kDraining:
    case ServerState::kStopped:
      return false;
  }
  return false;
}

void ServerLifecycle::finish(std::size_t units) {
  bool drained = false;
  {
    MutexLock lock(mutex_);
    EUGENE_CHECK_GE(inflight_, units) << "ServerLifecycle::finish without admit";
    inflight_ -= units;
    drained = inflight_ == 0;
  }
  // Notify outside the lock so the woken drainer never blocks on mutex_.
  if (drained) drained_cv_.notify_all();
}

void ServerLifecycle::set_serving() {
  MutexLock lock(mutex_);
  if (state_ == ServerState::kStarting) state_ = ServerState::kServing;
}

DrainReport ServerLifecycle::begin_drain(double timeout_ms) {
  Stopwatch watch;
  DrainReport report;
  {
    MutexLock lock(mutex_);
    if (state_ == ServerState::kStopped) {
      report.completed = true;
      return report;
    }
    state_ = ServerState::kDraining;  // Starting/Serving/Draining all land here
    report.inflight_at_begin = inflight_;
  }
  // Chaos seam: a drain that stalls (delay) or dies (error) before the wait.
  // Fired outside the mutex — a hung drain must never wedge try_admit/finish.
  EUGENE_FAILPOINT("lifecycle.drain.hang");
  {
    MutexLock lock(mutex_);
    report.completed = drained_cv_.wait_for(
        mutex_, timeout_ms, [this]() EUGENE_REQUIRES(mutex_) { return inflight_ == 0; });
    report.inflight_abandoned = inflight_;
  }
  report.duration_ms = watch.elapsed_ms();
  return report;
}

void ServerLifecycle::set_stopped() {
  MutexLock lock(mutex_);
  state_ = ServerState::kStopped;
}

ServerState ServerLifecycle::state() const {
  MutexLock lock(mutex_);
  return state_;
}

std::size_t ServerLifecycle::inflight() const {
  MutexLock lock(mutex_);
  return inflight_;
}

}  // namespace eugene
