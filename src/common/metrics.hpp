// Metrics registry (DESIGN.md §12 "Observability model"): named counters,
// gauges, and latency histograms with a text snapshot.
//
// Subsystems register instruments by name (get-or-create; returned
// references stay valid for the registry's lifetime — storage is a deque)
// and update them with relaxed atomics, so the hot path never touches the
// registry mutex:
//
//   auto& hedges = telemetry::MetricsRegistry::global().counter(
//       "sched.live.hedges_issued");
//   hedges.inc();
//
// Registration and snapshotting serialize on one ranked mutex
// (LockRank::kMetrics); nothing nests inside it, and it may be acquired
// while holding any subsystem lock below it.
//
// snapshot_text() emits a line-oriented, machine-parseable dump:
//
//   # eugene-metrics v1
//   counter sched.live.hedges_issued 3
//   gauge serving.brownout.level 1
//   histogram sched.stage_latency_ms.stage0 count 42 p50 1.25 p99 4
//       buckets 17:5,30:37                                [same line]
//
// (one line per instrument; `buckets` lists slot:count pairs for non-empty
// LatencyHistogram slots). parse_metrics_text() is the inverse: it rebuilds
// exact counter/gauge values and exact histogram bucket counts, so the
// format round-trips — Metrics.SnapshotTextRoundTrips pins this, and
// EugeneService::metrics_text() / the examples' --metrics flag surface it.
//
// Naming convention: `<subsystem>.<object>[.<detail>]`, lower-case,
// dot-separated, no spaces (names are whitespace-delimited in the text
// format; counter() et al. reject names with whitespace).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.hpp"
#include "common/thread_annotations.hpp"

namespace eugene::telemetry {

/// Monotone event count. Relaxed atomic increments; safe from any thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (levels, sizes, ratios).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Named instrument table. Instruments are created on first use and live as
/// long as the registry; the same name always answers the same instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry that EugeneService::metrics_text() snapshots.
  /// Never destroyed (leaked intentionally): worker threads and atexit-
  /// ordered statics may bump counters during shutdown.
  static MetricsRegistry& global();

  /// Get-or-create by name. Throws InvalidArgument on names containing
  /// whitespace (they would corrupt the text format).
  Counter& counter(std::string_view name) EUGENE_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) EUGENE_EXCLUDES(mutex_);
  LatencyHistogram& histogram(std::string_view name) EUGENE_EXCLUDES(mutex_);

  /// The text snapshot documented in the header comment: deterministic
  /// (instruments sorted by name), machine-parseable, round-trippable via
  /// parse_metrics_text().
  std::string snapshot_text() const EUGENE_EXCLUDES(mutex_);

  /// Zeroes every registered instrument (tests; instruments stay
  /// registered so cached references remain valid).
  void reset() EUGENE_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{LockRank::kMetrics, "MetricsRegistry::mutex_"};
  // Deques: growth never moves existing instruments, so references handed
  // out by counter()/gauge()/histogram() stay valid forever.
  std::deque<std::pair<std::string, Counter>> counters_
      EUGENE_GUARDED_BY(mutex_);
  std::deque<std::pair<std::string, Gauge>> gauges_ EUGENE_GUARDED_BY(mutex_);
  std::deque<std::pair<std::string, LatencyHistogram>> histograms_
      EUGENE_GUARDED_BY(mutex_);
};

/// Parsed form of snapshot_text() — the round-trip contract.
struct MetricsSnapshot {
  struct Histogram {
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    /// Non-empty LatencyHistogram slots: slot index → exact count.
    std::map<std::size_t, std::uint64_t> buckets;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

/// Inverse of MetricsRegistry::snapshot_text(). Throws CorruptionError on
/// anything that is not a well-formed v1 metrics dump (wrong header,
/// unknown line type, malformed numbers or bucket lists).
MetricsSnapshot parse_metrics_text(const std::string& text);

}  // namespace eugene::telemetry
