// Deterministic fault injection.
//
// A *failpoint* is a named program site where tests (or an operator, via the
// EUGENE_FAILPOINTS environment variable) can inject a failure: an exception
// that simulates a crash, or a delay that simulates a stall. Sites are
// declared inline on the code path they perturb:
//
//   EUGENE_FAILPOINT("live.worker.crash");   // may throw FailpointError
//
// and armed from a test:
//
//   FailpointSpec spec;
//   spec.kind = FailpointKind::kError;
//   spec.probability = 0.25;                 // seeded, deterministic draws
//   spec.max_fires = 3;                      // auto-disarm budget
//   FailpointRegistry::instance().arm("live.worker.crash", spec);
//
// Cost model: when *no* failpoint is armed anywhere in the process, a site is
// one relaxed atomic load and a predicted-not-taken branch (< 1 ns; see
// BM_FailpointDisabled in bench_micro.cpp) — cheap enough for stage-level hot
// paths. The registry lock is only touched once something is armed.
//
// Environment arming (used by CI's chaos job): EUGENE_FAILPOINTS holds a
// comma-separated list of `name=kind[:p=<prob>][:count=<n>][:ms=<delay>]
// [:seed=<s>]` clauses, e.g.
//
//   EUGENE_FAILPOINTS='live.worker.crash=error:p=0.05:seed=11,fifo.write.corrupt=error:count=2'
//
// The registry arms itself from the environment the first time instance() is
// called, so any binary becomes a chaos harness without code changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace eugene {

/// Thrown by an armed kError failpoint: the simulated fault.
class FailpointError : public Error {
 public:
  explicit FailpointError(const std::string& what) : Error(what) {}
};

/// What an armed failpoint does when it fires.
enum class FailpointKind {
  kError,  ///< throw FailpointError at the site
  kDelay,  ///< sleep for delay_ms at the site (simulates a stalled worker)
};

/// How an armed failpoint decides to fire.
struct FailpointSpec {
  FailpointKind kind = FailpointKind::kError;
  double probability = 1.0;     ///< chance each evaluation fires (seeded draw)
  std::int64_t max_fires = -1;  ///< total fires before going dormant (-1 = ∞)
  double delay_ms = 0.0;        ///< kDelay only: stall duration
  std::uint64_t seed = 42;      ///< per-failpoint RNG seed (determinism)
};

namespace detail {
/// Process-wide count of armed failpoints. The EUGENE_FAILPOINT macro reads
/// this (relaxed) to keep disabled sites branch-only.
inline std::atomic<int> g_failpoints_armed{0};
}  // namespace detail

/// Process-wide registry of armed failpoints. Thread-safe: workers evaluate
/// sites concurrently while a test arms and disarms.
class FailpointRegistry {
 public:
  /// The singleton. First call arms any EUGENE_FAILPOINTS environment spec.
  static FailpointRegistry& instance();

  /// True iff any failpoint is armed (the macro's fast-path guard).
  static bool any_armed() {
    return detail::g_failpoints_armed.load(std::memory_order_relaxed) != 0;
  }

  /// Arms (or re-arms, resetting counters) the named failpoint.
  void arm(const std::string& name, FailpointSpec spec) EUGENE_EXCLUDES(mutex_);

  /// Disarms one failpoint; unknown names are a no-op.
  void disarm(const std::string& name) EUGENE_EXCLUDES(mutex_);

  /// Disarms everything (test isolation; guards use this in SetUp/TearDown).
  void disarm_all() EUGENE_EXCLUDES(mutex_);

  /// Number of currently armed failpoints.
  std::size_t armed() const EUGENE_EXCLUDES(mutex_);

  /// Times the named failpoint has fired since it was last armed (0 if never
  /// armed). Chaos tests reconcile injected-fault counts against this.
  std::size_t fires(const std::string& name) const EUGENE_EXCLUDES(mutex_);

  /// Parses and arms a `name=kind[:p=..][:count=..][:ms=..][:seed=..],...`
  /// spec string; returns the number of failpoints armed. Throws
  /// InvalidArgument on malformed clauses.
  std::size_t arm_from_string(const std::string& spec) EUGENE_EXCLUDES(mutex_);

  /// Arms from the given environment variable if set; returns count armed.
  std::size_t arm_from_env(const char* var = "EUGENE_FAILPOINTS")
      EUGENE_EXCLUDES(mutex_);

  /// Site evaluation: fires the armed action (throw or sleep) when the draw
  /// says so. Called via EUGENE_FAILPOINT, never directly.
  void evaluate(const char* name) EUGENE_EXCLUDES(mutex_);

  /// Boolean site evaluation for custom fault actions (e.g. the FIFO writer
  /// corrupting its own frame). Counts as a fire when it returns true.
  bool should_fire(const char* name) EUGENE_EXCLUDES(mutex_);

 private:
  struct Armed {
    std::string name;
    FailpointSpec spec;
    std::size_t fires = 0;
    Rng rng{42};
  };

  FailpointRegistry() = default;

  Armed* find_locked(const char* name) EUGENE_REQUIRES(mutex_);
  /// Runs the fire draw; returns the action to take (delay_ms >= 0 means
  /// sleep, kind kError means throw) or false when dormant.
  bool draw_locked(Armed& a) EUGENE_REQUIRES(mutex_);

  // kFailpointRegistry ranks near the leaves: EUGENE_FAILPOINT sites fire
  // inside locked regions (e.g. the usage journal appends under kUsageMeter).
  mutable Mutex mutex_{LockRank::kFailpointRegistry, "FailpointRegistry::mutex_"};
  std::vector<Armed> armed_ EUGENE_GUARDED_BY(mutex_);
};

}  // namespace eugene

// A failpoint site. Disabled (nothing armed process-wide): one relaxed load
// + branch. Armed: full registry evaluation, which may throw FailpointError
// or sleep.
#define EUGENE_FAILPOINT(name)                                       \
  do {                                                               \
    if (::eugene::FailpointRegistry::any_armed()) [[unlikely]]       \
      ::eugene::FailpointRegistry::instance().evaluate(name);        \
  } while (false)

// Boolean failpoint site for callers that implement the fault themselves
// (returns true when the failpoint fires; never throws or sleeps).
#define EUGENE_FAILPOINT_FIRED(name)                  \
  (::eugene::FailpointRegistry::any_armed() &&        \
   ::eugene::FailpointRegistry::instance().should_fire(name))
