// Fixed-size worker pool. Used by the live (non-simulated) scheduler mode and
// by batch evaluation helpers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace eugene {

/// A minimal thread pool: submit() enqueues a callable, workers drain the
/// queue FIFO. Destruction waits for queued work to finish.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace eugene
