// Fixed-size worker pool. Used by the live (non-simulated) scheduler mode and
// by batch evaluation helpers.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace eugene {

/// A minimal thread pool: submit() enqueues a callable, workers drain the
/// queue FIFO. Destruction waits for queued work to finish; work submitted
/// from inside a running task during shutdown is still executed.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>>
      EUGENE_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t size() const { return workers_.size(); }

  /// Number of jobs waiting (not yet picked up by a worker).
  std::size_t pending() const EUGENE_EXCLUDES(mutex_);

 private:
  void worker_loop() EUGENE_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_{LockRank::kThreadPool, "ThreadPool::mutex_"};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ EUGENE_GUARDED_BY(mutex_);
  bool stopping_ EUGENE_GUARDED_BY(mutex_) = false;
};

}  // namespace eugene
