// Error handling primitives shared by every Eugene module.
//
// Eugene follows the C++ Core Guidelines error model: programming errors
// (violated preconditions) and unrecoverable runtime failures throw
// `eugene::Error`; recoverable conditions are expressed in return types.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eugene {

/// Base exception for all Eugene failures. Carries a human-readable message
/// that includes the failing source location when raised via EUGENE_CHECK.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an API precondition is violated by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant fails (a bug in Eugene itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown when an inter-process transport (e.g. the named-pipe channel)
/// detects corruption, truncation, or a bounded-wait timeout. Recoverable by
/// the caller: reconnect, re-send, or fail over — never silently swallowed.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// Thrown when durable state read back from disk fails validation: bad
/// magic, unsupported format version, truncation, or a CRC mismatch
/// (DESIGN.md §9 "Durability model"). Recoverable by the caller: fall back
/// to an older snapshot or rebuild the artifact — never load garbage.
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what) : Error(what) {}
};

/// Thrown when the operating system refuses a filesystem operation (open,
/// write, fsync, rename) on a durability path. Distinct from
/// CorruptionError: the data is fine, the environment is not.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when cooperative cancellation (a fired CancellationToken — e.g.
/// a drain, a lost hedge race) aborts work before it could complete. The
/// work was neither attempted nor failed on its own terms; callers that
/// distinguish "gave up" from "was told to stop" catch this type.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

namespace detail {

template <typename E>
[[noreturn]] void raise(const char* file, int line, const char* expr,
                        const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw E(os.str());
}

}  // namespace detail
}  // namespace eugene

/// Validate a caller-supplied precondition; throws eugene::InvalidArgument.
/// Internal invariants use EUGENE_CHECK / EUGENE_DCHECK from common/check.hpp.
#define EUGENE_REQUIRE(cond, msg)                                              \
  do {                                                                         \
    if (!(cond))                                                               \
      ::eugene::detail::raise<::eugene::InvalidArgument>(__FILE__, __LINE__,   \
                                                         #cond, (msg));        \
  } while (false)
