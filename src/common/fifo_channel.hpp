// POSIX named-pipe (FIFO) message transport.
//
// The paper: "The confidence in classification will then be sent to our
// user-level scheduler through a named pipe in linux." This class reproduces
// that transport: length-prefixed binary frames over a mkfifo() pipe, one
// writer end per worker and one reader end at the scheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace eugene {

/// Writer end of a named pipe carrying length-prefixed frames.
/// Thread-safe: concurrent write_frame() calls are serialized so frames
/// larger than PIPE_BUF never interleave on the pipe.
class FifoWriter {
 public:
  /// Opens the FIFO at `path` for writing (blocks until a reader exists).
  explicit FifoWriter(const std::string& path);
  ~FifoWriter();

  FifoWriter(const FifoWriter&) = delete;
  FifoWriter& operator=(const FifoWriter&) = delete;

  /// Writes one frame: 4-byte little-endian length then payload.
  /// Returns false if the pipe broke (reader gone).
  bool write_frame(const std::vector<std::uint8_t>& payload)
      EUGENE_EXCLUDES(io_mutex_);

 private:
  Mutex io_mutex_;               ///< serializes whole frames onto the pipe
  int fd_ EUGENE_GUARDED_BY(io_mutex_) = -1;
};

/// Reader end of a named pipe carrying length-prefixed frames.
/// Thread-safe: concurrent read_frame() calls are serialized so each consumer
/// sees whole frames.
class FifoReader {
 public:
  /// Creates the FIFO at `path` if needed and opens it for reading.
  explicit FifoReader(const std::string& path);
  ~FifoReader();

  FifoReader(const FifoReader&) = delete;
  FifoReader& operator=(const FifoReader&) = delete;

  /// Blocks for the next frame; std::nullopt on EOF (all writers closed).
  std::optional<std::vector<std::uint8_t>> read_frame()
      EUGENE_EXCLUDES(io_mutex_);

  const std::string& path() const { return path_; }

 private:
  /// Reads exactly n bytes; false on EOF.
  bool read_exact(std::uint8_t* buf, std::size_t n) EUGENE_REQUIRES(io_mutex_);

  std::string path_;
  Mutex io_mutex_;               ///< serializes whole frames off the pipe
  int fd_ EUGENE_GUARDED_BY(io_mutex_) = -1;
  bool created_ = false;
};

/// Serializes the worker→scheduler end-of-stage report used by the live
/// scheduler mode (task id, finished stage, predicted label, confidence).
struct StageReport {
  std::uint32_t task_id = 0;
  std::uint32_t stage = 0;
  std::uint32_t predicted_label = 0;
  float confidence = 0.0f;

  std::vector<std::uint8_t> encode() const;
  static std::optional<StageReport> decode(const std::vector<std::uint8_t>& bytes);

  bool operator==(const StageReport&) const = default;
};

}  // namespace eugene
