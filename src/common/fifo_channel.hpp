// POSIX named-pipe (FIFO) message transport.
//
// The paper: "The confidence in classification will then be sent to our
// user-level scheduler through a named pipe in linux." This class reproduces
// that transport — hardened for the failure model in DESIGN.md §8:
//
//   * frames are length-prefixed AND CRC32-checked, so corrupted bytes yield
//     a typed eugene::TransportError instead of garbage scheduler state;
//   * every read and write waits a bounded time (poll(2)), so a stalled or
//     dead peer yields TransportError instead of a hang;
//   * the writer's open() retries with exponential backoff while the reader
//     comes up, bounded by open_timeout_ms (reconnect-with-backoff);
//   * a frame truncated by writer death surfaces as TransportError, never as
//     an indefinite block or a short garbage frame.
//
// Wire format per frame: [u32 LE payload length][u32 LE CRC32(payload)]
// [payload bytes].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "common/thread_annotations.hpp"

namespace eugene {

/// Transport robustness knobs, shared by both pipe ends.
struct FifoOptions {
  double open_timeout_ms = 10'000.0;  ///< writer: bounded wait for a reader
  double io_timeout_ms = 10'000.0;    ///< bounded wait for pipe readiness
  std::size_t max_frame_bytes = 64u << 20;  ///< reject absurd/corrupt lengths
  RetryPolicy open_retry{/*max_attempts=*/100, /*base_delay_ms=*/0.5,
                         /*max_delay_ms=*/50.0, /*jitter=*/0.5};
};

/// Writer end of a named pipe carrying CRC-checked frames.
/// Thread-safe: concurrent write_frame() calls are serialized so frames
/// larger than PIPE_BUF never interleave on the pipe.
///
/// Failpoints (chaos testing): `fifo.write.corrupt` flips a frame byte after
/// the CRC is computed; `fifo.write.torn` drops the second half of a frame
/// (simulates the writer dying mid-frame).
class FifoWriter {
 public:
  /// Opens the FIFO at `path` for writing, retrying with backoff until a
  /// reader appears; throws TransportError after open_timeout_ms without one.
  explicit FifoWriter(const std::string& path, FifoOptions options = {});
  ~FifoWriter();

  FifoWriter(const FifoWriter&) = delete;
  FifoWriter& operator=(const FifoWriter&) = delete;

  /// Writes one frame. Returns false if the pipe broke (reader gone).
  /// Throws TransportError if the pipe stays unwritable past io_timeout_ms
  /// or the payload exceeds max_frame_bytes.
  bool write_frame(const std::vector<std::uint8_t>& payload)
      EUGENE_EXCLUDES(io_mutex_);

 private:
  FifoOptions options_;
  /// Serializes whole frames onto the pipe.
  Mutex io_mutex_{LockRank::kFifo, "FifoWriter::io_mutex_"};
  int fd_ EUGENE_GUARDED_BY(io_mutex_) = -1;
};

/// Reader end of a named pipe carrying CRC-checked frames.
/// Thread-safe: concurrent read_frame() calls are serialized so each consumer
/// sees whole frames.
class FifoReader {
 public:
  /// Creates the FIFO at `path` if needed and opens it for reading (blocks
  /// until a writer opens the other end — the rendezvous the paper's process
  /// pool relies on).
  explicit FifoReader(const std::string& path, FifoOptions options = {});
  ~FifoReader();

  FifoReader(const FifoReader&) = delete;
  FifoReader& operator=(const FifoReader&) = delete;

  /// Blocks (bounded) for the next frame; std::nullopt on clean EOF (all
  /// writers closed at a frame boundary). Throws TransportError on a CRC
  /// mismatch, an oversized length prefix, a frame truncated by writer
  /// death, or io_timeout_ms without pipe activity.
  std::optional<std::vector<std::uint8_t>> read_frame()
      EUGENE_EXCLUDES(io_mutex_);

  const std::string& path() const { return path_; }

 private:
  /// Reads up to n bytes, stopping early only at EOF; returns bytes read.
  /// Throws TransportError when the pipe stays silent past io_timeout_ms.
  std::size_t read_upto(std::uint8_t* buf, std::size_t n)
      EUGENE_REQUIRES(io_mutex_);

  std::string path_;
  FifoOptions options_;
  /// Serializes whole frames off the pipe.
  Mutex io_mutex_{LockRank::kFifo, "FifoReader::io_mutex_"};
  int fd_ EUGENE_GUARDED_BY(io_mutex_) = -1;
  bool created_ = false;
};

/// Pure frame codec — the wire-format validation logic of FifoReader with
/// the pipe factored out. FifoReader::read_frame routes its header and CRC
/// checks through these, so the fuzz harness (fuzz/fuzz_fifo_frame.cpp)
/// exercises exactly the validation production traffic meets. Contract:
/// arbitrary bytes yield frames or a typed TransportError, never UB.
namespace fifo_wire {

constexpr std::size_t kHeaderBytes = 8;  ///< u32 LE length + u32 LE crc32

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};

/// Decodes an 8-byte frame header. Throws TransportError when the length
/// prefix exceeds `max_frame_bytes` (a corrupt or hostile length).
FrameHeader parse_frame_header(const std::uint8_t* header,
                               std::size_t max_frame_bytes);

/// Throws TransportError unless crc32(payload, n) equals `expected_crc`.
void verify_frame_crc(const std::uint8_t* payload, std::size_t n,
                      std::uint32_t expected_crc);

/// Reference decoder for a contiguous stream of frames (what the pipe would
/// deliver): parses frame after frame, throwing TransportError on a torn
/// header, an oversized length, a truncated payload, or a CRC mismatch.
/// A stream ending cleanly at a frame boundary returns all frames parsed.
std::vector<std::vector<std::uint8_t>> decode_stream(
    const std::uint8_t* data, std::size_t size, std::size_t max_frame_bytes);

}  // namespace fifo_wire

/// Serializes the worker→scheduler end-of-stage report used by the live
/// scheduler mode (task id, finished stage, predicted label, confidence).
struct StageReport {
  std::uint32_t task_id = 0;
  std::uint32_t stage = 0;
  std::uint32_t predicted_label = 0;
  float confidence = 0.0f;

  std::vector<std::uint8_t> encode() const;
  static std::optional<StageReport> decode(const std::vector<std::uint8_t>& bytes);

  bool operator==(const StageReport&) const = default;
};

}  // namespace eugene
