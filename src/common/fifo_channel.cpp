#include "common/fifo_channel.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace eugene {
namespace {

constexpr std::size_t kHeaderBytes = fifo_wire::kHeaderBytes;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// poll(2) one fd for `events`; returns the revents. Throws TransportError
/// when nothing happens within timeout_ms.
short poll_or_throw(int fd, short events, double timeout_ms, const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int timeout = timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms) + 1;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("fifo: poll failed while ") + what + ": " +
                           std::strerror(errno));
    }
    if (rc == 0)
      throw TransportError(std::string("fifo: timed out while ") + what +
                           " (io_timeout_ms exceeded)");
    return pfd.revents;
  }
}

void make_fifo(const std::string& path, bool* created) {
  if (::mkfifo(path.c_str(), 0600) == 0) {
    if (created != nullptr) *created = true;
  } else {
    EUGENE_REQUIRE(errno == EEXIST, "fifo: mkfifo failed for " + path + ": " +
                                        std::strerror(errno));
  }
}

}  // namespace

namespace fifo_wire {

FrameHeader parse_frame_header(const std::uint8_t* header,
                               std::size_t max_frame_bytes) {
  FrameHeader h;
  h.payload_len = get_u32(header);
  h.crc = get_u32(header + 4);
  if (h.payload_len > max_frame_bytes)
    throw TransportError("FifoReader: frame length " + std::to_string(h.payload_len) +
                         " exceeds max_frame_bytes (corrupt length prefix?)");
  return h;
}

void verify_frame_crc(const std::uint8_t* payload, std::size_t n,
                      std::uint32_t expected_crc) {
  if (crc32(payload, n) != expected_crc)
    throw TransportError("FifoReader: CRC mismatch (frame corrupted in transit)");
}

std::vector<std::vector<std::uint8_t>> decode_stream(const std::uint8_t* data,
                                                     std::size_t size,
                                                     std::size_t max_frame_bytes) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t pos = 0;
  while (pos < size) {
    if (size - pos < kHeaderBytes)
      throw TransportError("FifoReader: writer died mid-header (" +
                           std::to_string(size - pos) + " of " +
                           std::to_string(kHeaderBytes) + " bytes)");
    const FrameHeader h = parse_frame_header(data + pos, max_frame_bytes);
    pos += kHeaderBytes;
    if (size - pos < h.payload_len)
      throw TransportError("FifoReader: truncated frame (" +
                           std::to_string(size - pos) + " of " +
                           std::to_string(h.payload_len) +
                           " payload bytes before EOF)");
    verify_frame_crc(data + pos, h.payload_len, h.crc);
    frames.emplace_back(data + pos, data + pos + h.payload_len);
    pos += h.payload_len;
  }
  return frames;
}

}  // namespace fifo_wire

FifoWriter::FifoWriter(const std::string& path, FifoOptions options)
    : options_(options) {
  // Create the FIFO if it does not exist yet so writer and reader can come
  // up in either order (mkfifo is idempotent modulo EEXIST).
  make_fifo(path, nullptr);
  // O_NONBLOCK open fails with ENXIO until a reader holds the other end;
  // retry with backoff so a slow-starting reader is tolerated but a missing
  // one surfaces as a typed error instead of an indefinite block.
  Stopwatch watch;
  Rng backoff_rng(0x0f1f0);
  std::size_t attempt = 0;
  for (;;) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_NONBLOCK | O_CLOEXEC);
    if (fd_ >= 0) break;
    if (errno != ENXIO)
      throw TransportError("FifoWriter: cannot open " + path + ": " +
                           std::strerror(errno));
    if (watch.elapsed_ms() >= options_.open_timeout_ms)
      throw TransportError("FifoWriter: no reader on " + path + " within " +
                           std::to_string(options_.open_timeout_ms) + " ms");
    ++attempt;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        backoff_delay_ms(options_.open_retry, attempt, backoff_rng)));
  }
}

FifoWriter::~FifoWriter() {
  MutexLock lock(io_mutex_);
  if (fd_ >= 0) ::close(fd_);
}

bool FifoWriter::write_frame(const std::vector<std::uint8_t>& payload) {
  EUGENE_REQUIRE(payload.size() <= options_.max_frame_bytes,
                 "FifoWriter: payload exceeds max_frame_bytes");
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + kHeaderBytes);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());

  // Chaos seams. Corruption flips one byte *after* the CRC was computed, so
  // the reader's check must catch it; a torn write drops the tail of the
  // frame, as if this worker process died mid-write.
  if (EUGENE_FAILPOINT_FIRED("fifo.write.corrupt"))
    frame[frame.size() > kHeaderBytes ? kHeaderBytes : 4] ^= 0x01;
  std::size_t frame_bytes = frame.size();
  if (EUGENE_FAILPOINT_FIRED("fifo.write.torn")) frame_bytes = frame.size() / 2;

  // Hold the lock across the whole frame: pipe writes beyond PIPE_BUF are not
  // atomic, so concurrent writers would interleave bytes mid-frame.
  MutexLock lock(io_mutex_);
  std::size_t written = 0;
  while (written < frame_bytes) {
    const short revents =
        poll_or_throw(fd_, POLLOUT, options_.io_timeout_ms, "writing a frame");
    if ((revents & (POLLERR | POLLHUP)) != 0 && (revents & POLLOUT) == 0)
      return false;  // reader gone
    const ssize_t n = ::write(fd_, frame.data() + written, frame_bytes - written);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;  // reader gone (EPIPE) or other terminal error
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

FifoReader::FifoReader(const std::string& path, FifoOptions options)
    : path_(path), options_(options) {
  make_fifo(path, &created_);
  // Blocking open: rendezvous with the first writer (the paper's scheduler
  // comes up waiting for its worker pool). Subsequent IO is non-blocking and
  // bounded by poll.
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  EUGENE_REQUIRE(fd_ >= 0, "FifoReader: cannot open " + path + ": " +
                               std::strerror(errno));
  const int flags = ::fcntl(fd_, F_GETFL);
  EUGENE_CHECK(flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0)
      << "FifoReader: cannot set O_NONBLOCK on " << path;
}

FifoReader::~FifoReader() {
  {
    MutexLock lock(io_mutex_);
    if (fd_ >= 0) ::close(fd_);
  }
  if (created_) ::unlink(path_.c_str());
}

std::size_t FifoReader::read_upto(std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd_, buf + got, n - got);
    if (r == 0) return got;  // EOF: all writers closed
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Bounded wait for the next byte; POLLHUP alone still lets read()
      // drain buffered bytes, so loop back to read unconditionally.
      poll_or_throw(fd_, POLLIN, options_.io_timeout_ms, "reading a frame");
      continue;
    }
    throw TransportError(std::string("FifoReader: read error: ") +
                         std::strerror(errno));
  }
  return got;
}

std::optional<std::vector<std::uint8_t>> FifoReader::read_frame() {
  MutexLock lock(io_mutex_);
  std::uint8_t header[kHeaderBytes];
  const std::size_t header_got = read_upto(header, kHeaderBytes);
  if (header_got == 0) return std::nullopt;  // clean EOF at a frame boundary
  if (header_got < kHeaderBytes)
    throw TransportError("FifoReader: writer died mid-header (" +
                         std::to_string(header_got) + " of " +
                         std::to_string(kHeaderBytes) + " bytes)");
  const fifo_wire::FrameHeader h =
      fifo_wire::parse_frame_header(header, options_.max_frame_bytes);
  std::vector<std::uint8_t> payload(h.payload_len);
  if (h.payload_len > 0) {
    const std::size_t got = read_upto(payload.data(), h.payload_len);
    if (got < h.payload_len)
      throw TransportError("FifoReader: truncated frame (" + std::to_string(got) +
                           " of " + std::to_string(h.payload_len) +
                           " payload bytes before EOF)");
  }
  fifo_wire::verify_frame_crc(payload.data(), payload.size(), h.crc);
  return payload;
}

std::vector<std::uint8_t> StageReport::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  put_u32(out, task_id);
  put_u32(out, stage);
  put_u32(out, predicted_label);
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(confidence));
  std::memcpy(&bits, &confidence, sizeof(bits));
  put_u32(out, bits);
  return out;
}

std::optional<StageReport> StageReport::decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 16) return std::nullopt;
  StageReport r;
  r.task_id = get_u32(bytes.data());
  r.stage = get_u32(bytes.data() + 4);
  r.predicted_label = get_u32(bytes.data() + 8);
  const std::uint32_t bits = get_u32(bytes.data() + 12);
  std::memcpy(&r.confidence, &bits, sizeof(r.confidence));
  return r;
}

}  // namespace eugene
