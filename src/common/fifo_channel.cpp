#include "common/fifo_channel.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "common/error.hpp"

namespace eugene {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

FifoWriter::FifoWriter(const std::string& path) {
  // Create the FIFO if it does not exist yet so writer and reader can come
  // up in either order (mkfifo is idempotent modulo EEXIST).
  if (::mkfifo(path.c_str(), 0600) != 0) {
    EUGENE_REQUIRE(errno == EEXIST, "FifoWriter: mkfifo failed for " + path + ": " +
                                        std::strerror(errno));
  }
  fd_ = ::open(path.c_str(), O_WRONLY);
  EUGENE_REQUIRE(fd_ >= 0, "FifoWriter: cannot open " + path + ": " +
                               std::strerror(errno));
}

FifoWriter::~FifoWriter() {
  if (fd_ >= 0) ::close(fd_);
}

bool FifoWriter::write_frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 4);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());

  // Hold the lock across the whole frame: pipe writes beyond PIPE_BUF are not
  // atomic, so concurrent writers would interleave bytes mid-frame.
  MutexLock lock(io_mutex_);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // reader gone (EPIPE) or other terminal error
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

FifoReader::FifoReader(const std::string& path) : path_(path) {
  if (::mkfifo(path.c_str(), 0600) == 0) {
    created_ = true;
  } else {
    EUGENE_REQUIRE(errno == EEXIST,
                   "FifoReader: mkfifo failed for " + path + ": " +
                       std::strerror(errno));
  }
  fd_ = ::open(path.c_str(), O_RDONLY);
  EUGENE_REQUIRE(fd_ >= 0, "FifoReader: cannot open " + path + ": " +
                               std::strerror(errno));
}

FifoReader::~FifoReader() {
  if (fd_ >= 0) ::close(fd_);
  if (created_) ::unlink(path_.c_str());
}

bool FifoReader::read_exact(std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd_, buf + got, n - got);
    if (r == 0) return false;  // EOF: all writers closed
    if (r < 0) {
      if (errno == EINTR) continue;
      EUGENE_CHECK(r >= 0) << "FifoReader read error: " << std::strerror(errno);
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> FifoReader::read_frame() {
  MutexLock lock(io_mutex_);
  std::uint8_t header[4];
  if (!read_exact(header, 4)) return std::nullopt;
  const std::uint32_t len = get_u32(header);
  std::vector<std::uint8_t> payload(len);
  if (len > 0 && !read_exact(payload.data(), len)) return std::nullopt;
  return payload;
}

std::vector<std::uint8_t> StageReport::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  put_u32(out, task_id);
  put_u32(out, stage);
  put_u32(out, predicted_label);
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(confidence));
  std::memcpy(&bits, &confidence, sizeof(bits));
  put_u32(out, bits);
  return out;
}

std::optional<StageReport> StageReport::decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 16) return std::nullopt;
  StageReport r;
  r.task_id = get_u32(bytes.data());
  r.stage = get_u32(bytes.data() + 4);
  r.predicted_label = get_u32(bytes.data() + 8);
  const std::uint32_t bits = get_u32(bytes.data() + 12);
  std::memcpy(&r.confidence, &bits, sizeof(r.confidence));
  return r;
}

}  // namespace eugene
