// Time sources: a wall-clock stopwatch for profiling and a virtual clock for
// the discrete-event scheduler simulation (DESIGN.md §5 "Real model,
// simulated time").
#pragma once

#include <chrono>
#include <cstdint>

#include "common/check.hpp"
#include "common/error.hpp"

namespace eugene {

/// Wall-clock stopwatch with millisecond/microsecond readouts.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_us() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - start_).count();
  }

  double elapsed_ms() const { return elapsed_us() / 1000.0; }

  double elapsed_s() const { return elapsed_us() / 1.0e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Abstract time source so schedulers can run against either wall time or
/// simulated time with the same code.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds (origin is implementation-defined).
  virtual double now_ms() const = 0;
};

/// Real time, anchored at construction.
class WallClock final : public Clock {
 public:
  double now_ms() const override { return watch_.elapsed_ms(); }

 private:
  Stopwatch watch_;
};

/// Manually advanced time for deterministic discrete-event simulation.
class VirtualClock final : public Clock {
 public:
  double now_ms() const override { return now_ms_; }

  /// Moves time forward; rewinding is a bug.
  void advance_to(double t_ms) {
    EUGENE_CHECK_GE(t_ms, now_ms_) << "VirtualClock cannot rewind";
    now_ms_ = t_ms;
  }

  void advance_by(double dt_ms) {
    EUGENE_REQUIRE(dt_ms >= 0.0, "advance_by: negative delta");
    now_ms_ += dt_ms;
  }

 private:
  double now_ms_ = 0.0;
};

}  // namespace eugene
