// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage: EUGENE_LOG(Info) << "trained " << n << " epochs";
// The global level defaults to Warn so tests and benches stay quiet; examples
// raise it to Info.
#pragma once

#include <sstream>
#include <string_view>

namespace eugene {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the minimum severity that is emitted. Thread-safe.
void set_log_level(LogLevel level);

/// Returns the current minimum severity.
LogLevel log_level();

namespace detail {

/// Accumulates one log line and flushes it (with a timestamp and level tag)
/// on destruction. Created by the EUGENE_LOG macro, never directly.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace eugene

#define EUGENE_LOG(severity)                                          \
  ::eugene::detail::LogLine(::eugene::LogLevel::severity, __FILE__, __LINE__)
