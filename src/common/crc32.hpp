// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used to checksum
// frames on the named-pipe transport so corrupted bytes surface as a typed
// TransportError instead of garbage scheduler state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace eugene {
namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// CRC-32 of `n` bytes starting at `data`.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrc32Table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace eugene
