// Bounded retry with exponential backoff and jitter.
//
// Shared by the live scheduler's worker supervision (re-dispatching a task
// whose worker died) and the FIFO transport's reconnect path. Delays are
// computed from an explicit Rng so retry schedules are reproducible.
#pragma once

#include <algorithm>
#include <thread>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace eugene {

/// Backoff shape: delay(attempt) = min(base * 2^(attempt-1), max), then
/// jittered by a uniform draw in [1 - jitter, 1 + jitter].
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< total tries (first attempt included)
  double base_delay_ms = 1.0;
  double max_delay_ms = 100.0;
  double jitter = 0.5;           ///< fraction of the delay randomized away
};

/// Backoff delay before retry number `attempt` (1-based: attempt 1 is the
/// first *retry*). Deterministic given the Rng state.
inline double backoff_delay_ms(const RetryPolicy& policy, std::size_t attempt,
                               Rng& rng) {
  EUGENE_REQUIRE(attempt >= 1, "backoff_delay_ms: attempt is 1-based");
  EUGENE_REQUIRE(policy.jitter >= 0.0 && policy.jitter <= 1.0,
                 "backoff_delay_ms: jitter outside [0,1]");
  // Saturate the exponent: past 2^63 the double has left every representable
  // max_delay_ms behind, and without the cap a zero base delay (0*2 == 0
  // never reaches the max) or an infinite max would spin the loop for up to
  // SIZE_MAX iterations — an effective hang for attempt counts a long-lived
  // retry loop legitimately reaches.
  const std::size_t doublings = std::min<std::size_t>(attempt - 1, 63);
  double delay = policy.base_delay_ms;
  for (std::size_t i = 0; i < doublings && delay < policy.max_delay_ms; ++i)
    delay *= 2.0;
  delay = std::min(delay, policy.max_delay_ms);
  if (policy.jitter > 0.0)
    delay *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  return delay;
}

/// Calls `fn` until it succeeds or the attempt budget is exhausted, sleeping
/// the backoff delay between tries. Retries on eugene::Error; the final
/// attempt's exception propagates. Returns fn's result.
///
/// Cancellation-aware (DESIGN.md §13 drain path): a non-null `cancel` token
/// is consulted between attempts and *during* backoff sleeps (the sleep is
/// sliced so cancellation cuts it short within ~1 ms). The attempt already
/// running is never interrupted — cancellation is cooperative, like
/// everywhere else — but no further attempt starts once the token fires:
/// the last failure's exception propagates immediately. A retry loop inside
/// a draining server therefore stops burning backoff budget the moment the
/// drain cancels its work.
template <typename F>
auto retry_with_backoff(const RetryPolicy& policy, Rng& rng, F&& fn,
                        const CancellationToken* cancel = nullptr) {
  EUGENE_REQUIRE(policy.max_attempts >= 1, "retry_with_backoff: zero attempts");
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const Error&) {
      if (attempt >= policy.max_attempts) throw;
      if (cancel != nullptr && cancel->cancelled()) throw;
    }
    const double delay_ms = backoff_delay_ms(policy, attempt, rng);
    if (cancel == nullptr) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    } else {
      // Sliced sleep: wake every millisecond to poll the token, so a drain
      // is never stuck behind a capped-out backoff delay.
      double remaining = delay_ms;
      while (remaining > 0.0 && !cancel->cancelled()) {
        const double slice = std::min(remaining, 1.0);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(slice));
        remaining -= slice;
      }
      if (cancel->cancelled()) {
        // Surface the abort as the in-flight failure would have: re-run the
        // attempt bookkeeping by throwing the typed cancellation error.
        throw CancelledError("retry_with_backoff: cancelled during backoff");
      }
    }
  }
}

}  // namespace eugene
