#include "common/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace eugene::telemetry {

namespace {

void require_clean_name(std::string_view name) {
  EUGENE_REQUIRE(!name.empty(), "metrics: empty instrument name");
  for (char c : name)
    EUGENE_REQUIRE(std::isspace(static_cast<unsigned char>(c)) == 0,
                   "metrics: instrument name contains whitespace");
}

/// Shortest decimal form that parses back to the same double.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: counters are bumped from worker threads and
  // atexit-ordered statics during shutdown, after local statics would have
  // been destroyed (same reasoning as the lock-rank TLS aggregate).
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT-new: intentional leak, see above
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  require_clean_name(name);
  MutexLock lock(mutex_);
  for (auto& [n, c] : counters_)
    if (n == name) return c;
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name), std::forward_as_tuple());
  return counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  require_clean_name(name);
  MutexLock lock(mutex_);
  for (auto& [n, g] : gauges_)
    if (n == name) return g;
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return gauges_.back().second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  require_clean_name(name);
  MutexLock lock(mutex_);
  for (auto& [n, h] : histograms_)
    if (n == name) return h;
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return histograms_.back().second;
}

std::string MetricsRegistry::snapshot_text() const {
  // Collect name→line under the lock, emit sorted for a deterministic dump.
  std::vector<std::pair<std::string, std::string>> lines;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_)
      lines.emplace_back(name,
                         "counter " + name + " " + std::to_string(c.value()));
    for (const auto& [name, g] : gauges_)
      lines.emplace_back(name, "gauge " + name + " " + fmt_double(g.value()));
    for (const auto& [name, h] : histograms_) {
      std::string line = "histogram " + name;
      line += " count " + std::to_string(h.count());
      line += " p50 " + fmt_double(h.quantile(0.50));
      line += " p99 " + fmt_double(h.quantile(0.99));
      line += " buckets ";
      bool any = false;
      for (std::size_t s = 0; s < LatencyHistogram::kSlots; ++s) {
        const std::uint64_t n = h.bucket_count(s);
        if (n == 0) continue;
        if (any) line += ",";
        line += std::to_string(s) + ":" + std::to_string(n);
        any = true;
      }
      if (!any) line += "-";
      lines.emplace_back(name, std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out = "# eugene-metrics v1\n";
  for (auto& [name, line] : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [n, c] : counters_) c.reset();
  for (auto& [n, g] : gauges_) g.set(0.0);
  for (auto& [n, h] : histograms_) h.reset();
}

namespace {

[[noreturn]] void bad_dump(const std::string& why, const std::string& line) {
  throw CorruptionError("parse_metrics_text: " + why +
                        (line.empty() ? "" : " in line: " + line));
}

std::uint64_t parse_u64(const std::string& tok, const std::string& line) {
  std::uint64_t v = 0;
  std::size_t pos = 0;
  try {
    v = std::stoull(tok, &pos);
  } catch (const std::exception&) {
    bad_dump("malformed integer '" + tok + "'", line);
  }
  if (pos != tok.size()) bad_dump("malformed integer '" + tok + "'", line);
  return v;
}

double parse_f64(const std::string& tok, const std::string& line) {
  double v = 0.0;
  std::size_t pos = 0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    bad_dump("malformed number '" + tok + "'", line);
  }
  if (pos != tok.size()) bad_dump("malformed number '" + tok + "'", line);
  return v;
}

/// Expects `label` as the next token and returns the token after it.
std::string expect_field(std::istringstream& in, const char* label,
                         const std::string& line) {
  std::string tok;
  if (!(in >> tok) || tok != label)
    bad_dump(std::string("expected '") + label + "' field", line);
  std::string value;
  if (!(in >> value))
    bad_dump(std::string("missing value after '") + label + "'", line);
  return value;
}

}  // namespace

MetricsSnapshot parse_metrics_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# eugene-metrics v1")
    bad_dump("missing '# eugene-metrics v1' header", line);

  MetricsSnapshot snap;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string type;
    std::string name;
    if (!(fields >> type >> name)) bad_dump("truncated line", line);
    if (type == "counter") {
      std::string value;
      if (!(fields >> value)) bad_dump("counter missing value", line);
      snap.counters[name] = parse_u64(value, line);
    } else if (type == "gauge") {
      std::string value;
      if (!(fields >> value)) bad_dump("gauge missing value", line);
      snap.gauges[name] = parse_f64(value, line);
    } else if (type == "histogram") {
      MetricsSnapshot::Histogram h;
      h.count = parse_u64(expect_field(fields, "count", line), line);
      h.p50 = parse_f64(expect_field(fields, "p50", line), line);
      h.p99 = parse_f64(expect_field(fields, "p99", line), line);
      const std::string buckets = expect_field(fields, "buckets", line);
      if (buckets != "-") {
        std::istringstream pairs(buckets);
        std::string pair;
        std::uint64_t total = 0;
        while (std::getline(pairs, pair, ',')) {
          const std::size_t colon = pair.find(':');
          if (colon == std::string::npos || colon == 0 ||
              colon + 1 >= pair.size())
            bad_dump("malformed bucket pair '" + pair + "'", line);
          const std::size_t slot =
              parse_u64(pair.substr(0, colon), line);
          if (slot >= LatencyHistogram::kSlots)
            bad_dump("bucket slot out of range '" + pair + "'", line);
          const std::uint64_t count =
              parse_u64(pair.substr(colon + 1), line);
          if (count == 0) bad_dump("empty bucket listed '" + pair + "'", line);
          if (h.buckets.count(slot) != 0)
            bad_dump("duplicate bucket slot '" + pair + "'", line);
          h.buckets[slot] = count;
          total += count;
        }
        if (total != h.count)
          bad_dump("bucket counts do not sum to 'count'", line);
      } else if (h.count != 0) {
        bad_dump("non-zero count with no buckets", line);
      }
      snap.histograms[name] = std::move(h);
    } else {
      bad_dump("unknown line type '" + type + "'", line);
    }
  }
  return snap;
}

}  // namespace eugene::telemetry
