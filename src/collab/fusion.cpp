#include "collab/fusion.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace eugene::collab {

TrustManager::TrustManager(std::size_t num_cameras, double initial_trust,
                           double learning_rate)
    : trust_(num_cameras, initial_trust), learning_rate_(learning_rate) {
  EUGENE_REQUIRE(num_cameras > 0, "TrustManager: no cameras");
  EUGENE_REQUIRE(initial_trust >= 0.0 && initial_trust <= 1.0,
                 "TrustManager: trust outside [0,1]");
  EUGENE_REQUIRE(learning_rate > 0.0 && learning_rate <= 1.0,
                 "TrustManager: learning rate outside (0,1]");
}

void TrustManager::observe(std::size_t camera, bool verified) {
  EUGENE_REQUIRE(camera < trust_.size(), "TrustManager: camera out of range");
  const double target = verified ? 1.0 : 0.0;
  trust_[camera] += learning_rate_ * (target - trust_[camera]);
  trust_[camera] = std::clamp(trust_[camera], 0.0, 1.0);
}

double TrustManager::trust(std::size_t camera) const {
  EUGENE_REQUIRE(camera < trust_.size(), "TrustManager: camera out of range");
  return trust_[camera];
}

Detection remap(const Detection& peer_box, const Camera& /*receiver*/,
                const FusionConfig& config, Rng& rng) {
  Detection d = peer_box;
  d.position.x += rng.normal(0.0, config.remap_noise_m);
  d.position.y += rng.normal(0.0, config.remap_noise_m);
  return d;
}

std::vector<Detection> fuse_detections(const Camera& receiver,
                                       const std::vector<Detection>& own,
                                       const std::vector<Detection>& peers,
                                       const FusionConfig& config,
                                       TrustManager* trust, Rng& rng) {
  // Remap and keep only peer boxes inside the receiver's view.
  std::vector<Detection> usable_peers;
  for (const Detection& p : peers) {
    const Detection r = remap(p, receiver, config, rng);
    if (receiver.sees(r.position)) usable_peers.push_back(r);
  }

  // Verification for trust: a peer box is corroborated when one of the
  // receiver's own detections lands within the fusion radius.
  if (trust != nullptr) {
    for (const Detection& p : usable_peers) {
      bool verified = false;
      for (const Detection& o : own)
        if (distance(p.position, o.position) <= config.fusion_radius_m) {
          verified = true;
          break;
        }
      trust->observe(p.camera, verified);
    }
  }

  // Greedy radius clustering over own + peer boxes; own boxes seed first so
  // locally confirmed people never disappear.
  struct Cluster {
    Detection representative;
    bool has_own = false;
    double peer_trust = 0.0;
  };
  std::vector<Cluster> clusters;
  auto assign = [&](const Detection& d, bool is_own) {
    for (Cluster& c : clusters) {
      if (distance(c.representative.position, d.position) <= config.fusion_radius_m) {
        c.has_own |= is_own;
        if (!is_own)
          c.peer_trust += trust != nullptr ? trust->trust(d.camera) : 1.0;
        return;
      }
    }
    Cluster c;
    c.representative = d;
    c.has_own = is_own;
    if (!is_own) c.peer_trust = trust != nullptr ? trust->trust(d.camera) : 1.0;
    clusters.push_back(c);
  };
  for (const Detection& d : own) assign(d, true);
  for (const Detection& d : usable_peers) assign(d, false);

  std::vector<Detection> fused;
  for (const Cluster& c : clusters) {
    if (c.has_own || c.peer_trust >= config.min_cluster_trust)
      fused.push_back(c.representative);
  }
  return fused;
}

double counting_accuracy(std::size_t estimated, std::size_t truth) {
  const double denom = std::max<double>(1.0, static_cast<double>(truth));
  const double err = std::abs(static_cast<double>(estimated) - static_cast<double>(truth));
  return clamp(1.0 - err / denom, 0.0, 1.0);
}

}  // namespace eugene::collab
