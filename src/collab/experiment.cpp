#include "collab/experiment.hpp"

#include <cmath>
#include <set>

#include "common/stats.hpp"

namespace eugene::collab {
namespace {

/// Match quality of a detection set against ground truth for one camera.
struct MatchStats {
  std::size_t covered_people = 0;   ///< distinct visible people detected
  std::size_t visible_people = 0;
  std::size_t true_detections = 0;  ///< detections matching a real person
  std::size_t total_detections = 0;
};

MatchStats match_detections(const Camera& camera, const std::vector<Detection>& dets,
                            const std::vector<Person>& people) {
  MatchStats stats;
  std::set<std::size_t> covered;
  for (const Detection& d : dets) {
    ++stats.total_detections;
    if (!d.is_false_positive) {
      ++stats.true_detections;
      covered.insert(d.truth_id);
    }
  }
  for (const Person& p : people)
    if (camera.sees(p.position)) ++stats.visible_people;
  stats.covered_people = covered.size();
  return stats;
}

std::vector<Detection> inject_rogue_boxes(const Camera& camera, const RogueConfig& rogue,
                                          const WorldConfig& world, Rng& rng) {
  std::vector<Detection> fake;
  double expected = rogue.injected_per_frame;
  std::size_t count = 0;
  while (expected > 0.0) {
    if (rng.bernoulli(std::min(1.0, expected))) ++count;
    expected -= 1.0;
  }
  for (std::size_t i = 0; i < count; ++i) {
    Detection d;
    d.position = {rng.uniform(0.0, world.width), rng.uniform(0.0, world.height)};
    d.camera = camera.id();
    d.score = 0.9;
    d.is_false_positive = true;
    fake.push_back(d);
  }
  return fake;
}

std::vector<Camera> build_cameras(const CollabExperimentConfig& config) {
  EUGENE_REQUIRE(!config.cameras.empty(), "experiment: no cameras configured");
  std::vector<Camera> cameras;
  cameras.reserve(config.cameras.size());
  for (std::size_t i = 0; i < config.cameras.size(); ++i)
    cameras.emplace_back(config.cameras[i], i);
  return cameras;
}

}  // namespace

std::vector<CameraConfig> ring_of_cameras(const WorldConfig& world, std::size_t count,
                                          double fov_rad, double range_m) {
  EUGENE_REQUIRE(count > 0, "ring_of_cameras: need at least one camera");
  std::vector<CameraConfig> cameras(count);
  const Vec2 center{world.width / 2.0, world.height / 2.0};
  const double radius = std::max(world.width, world.height) * 0.55;
  for (std::size_t i = 0; i < count; ++i) {
    const double angle =
        2.0 * 3.14159265358979 * static_cast<double>(i) / static_cast<double>(count);
    cameras[i].position = {center.x + radius * std::cos(angle),
                           center.y + radius * std::sin(angle)};
    // Face the world center.
    cameras[i].orientation_rad = std::atan2(center.y - cameras[i].position.y,
                                            center.x - cameras[i].position.x);
    cameras[i].fov_rad = fov_rad;
    cameras[i].range_m = range_m;
  }
  return cameras;
}

CollabMetrics run_individual(const CollabExperimentConfig& config) {
  Rng rng(config.seed);
  World world(config.world, rng);
  const std::vector<Camera> cameras = build_cameras(config);

  OnlineStats accuracy;
  std::size_t covered = 0, visible = 0, true_dets = 0, total_dets = 0;
  for (std::size_t frame = 0; frame < config.num_frames; ++frame) {
    world.step(rng);
    for (const Camera& camera : cameras) {
      std::vector<Detection> dets = camera.detect(world.people(), rng);
      if (config.rogue.has_value() && camera.id() == config.rogue->rogue_camera) {
        const auto fake = inject_rogue_boxes(camera, *config.rogue, config.world, rng);
        dets.insert(dets.end(), fake.begin(), fake.end());
      }
      const std::size_t truth = camera.true_count(world.people());
      accuracy.add(counting_accuracy(dets.size(), truth));
      const MatchStats m = match_detections(camera, dets, world.people());
      covered += m.covered_people;
      visible += m.visible_people;
      true_dets += m.true_detections;
      total_dets += m.total_detections;
    }
  }
  CollabMetrics out;
  out.detection_accuracy = accuracy.mean();
  out.mean_latency_ms = config.latency.full_pipeline_ms;
  out.recall = visible == 0 ? 0.0 : static_cast<double>(covered) / visible;
  out.precision = total_dets == 0 ? 0.0 : static_cast<double>(true_dets) / total_dets;
  return out;
}

CollabMetrics run_collaborative(const CollabExperimentConfig& config) {
  Rng rng(config.seed);
  World world(config.world, rng);
  const std::vector<Camera> cameras = build_cameras(config);
  TrustManager trust(cameras.size(), 1.0, config.fusion.trust_learning_rate);

  OnlineStats accuracy;
  OnlineStats latency;
  std::size_t covered = 0, visible = 0, true_dets = 0, total_dets = 0;
  // Stagger full-pipeline refreshes so one camera refreshes per frame slot.
  std::vector<std::size_t> since_full(cameras.size());
  for (std::size_t i = 0; i < cameras.size(); ++i)
    since_full[i] = i * config.latency.refresh_period / std::max<std::size_t>(1, cameras.size());

  for (std::size_t frame = 0; frame < config.num_frames; ++frame) {
    world.step(rng);
    // Every camera produces its local boxes (the guided pipeline still
    // detects; it is cheaper because peers' boxes seed the search).
    std::vector<std::vector<Detection>> per_camera(cameras.size());
    for (std::size_t c = 0; c < cameras.size(); ++c) {
      per_camera[c] = cameras[c].detect(world.people(), rng);
      if (config.rogue.has_value() && c == config.rogue->rogue_camera) {
        const auto fake = inject_rogue_boxes(cameras[c], *config.rogue, config.world, rng);
        per_camera[c].insert(per_camera[c].end(), fake.begin(), fake.end());
      }
    }
    for (std::size_t c = 0; c < cameras.size(); ++c) {
      std::vector<Detection> peers;
      for (std::size_t o = 0; o < cameras.size(); ++o)
        if (o != c) peers.insert(peers.end(), per_camera[o].begin(), per_camera[o].end());
      const std::vector<Detection> fused =
          fuse_detections(cameras[c], per_camera[c], peers, config.fusion,
                          config.trust_enabled ? &trust : nullptr, rng);
      const std::size_t truth = cameras[c].true_count(world.people());
      accuracy.add(counting_accuracy(fused.size(), truth));
      if (++since_full[c] >= config.latency.refresh_period) {
        since_full[c] = 0;
        latency.add(config.latency.full_pipeline_ms);
      } else {
        latency.add(config.latency.guided_ms);
      }
      const MatchStats m = match_detections(cameras[c], fused, world.people());
      covered += m.covered_people;
      visible += m.visible_people;
      true_dets += m.true_detections;
      total_dets += m.total_detections;
    }
  }
  CollabMetrics out;
  out.detection_accuracy = accuracy.mean();
  out.mean_latency_ms = latency.mean();
  out.recall = visible == 0 ? 0.0 : static_cast<double>(covered) / visible;
  out.precision = total_dets == 0 ? 0.0 : static_cast<double>(true_dets) / total_dets;
  return out;
}

std::vector<std::vector<double>> count_correlation_matrix(
    const CollabExperimentConfig& config) {
  Rng rng(config.seed);
  World world(config.world, rng);
  const std::vector<Camera> cameras = build_cameras(config);
  std::vector<std::vector<double>> counts(cameras.size());
  for (std::size_t frame = 0; frame < config.num_frames; ++frame) {
    world.step(rng);
    for (std::size_t c = 0; c < cameras.size(); ++c)
      counts[c].push_back(
          static_cast<double>(cameras[c].detect(world.people(), rng).size()));
  }
  const std::size_t n = cameras.size();
  std::vector<std::vector<double>> corr(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        corr[i][j] = 1.0;
        continue;
      }
      const double mi = mean(counts[i]), mj = mean(counts[j]);
      double cov = 0.0, vi = 0.0, vj = 0.0;
      for (std::size_t t = 0; t < counts[i].size(); ++t) {
        cov += (counts[i][t] - mi) * (counts[j][t] - mj);
        vi += (counts[i][t] - mi) * (counts[i][t] - mi);
        vj += (counts[j][t] - mj) * (counts[j][t] - mj);
      }
      corr[i][j] = (vi <= 0.0 || vj <= 0.0) ? 0.0 : cov / std::sqrt(vi * vj);
    }
  }
  return corr;
}

std::vector<std::pair<std::size_t, std::size_t>> discover_collaborators(
    const std::vector<std::vector<double>>& correlation, double threshold) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < correlation.size(); ++i)
    for (std::size_t j = i + 1; j < correlation.size(); ++j)
      if (correlation[i][j] >= threshold) pairs.emplace_back(i, j);
  return pairs;
}

}  // namespace eugene::collab
