#include "collab/world.hpp"

#include <cmath>

namespace eugene::collab {

double norm(const Vec2& v) { return std::sqrt(v.x * v.x + v.y * v.y); }

double distance(const Vec2& a, const Vec2& b) { return norm(a - b); }

World::World(const WorldConfig& config, Rng& rng) : config_(config) {
  EUGENE_REQUIRE(config.num_people > 0, "World: need at least one person");
  EUGENE_REQUIRE(config.width > 0.0 && config.height > 0.0, "World: empty plane");
  people_.resize(config.num_people);
  for (std::size_t i = 0; i < people_.size(); ++i) {
    people_[i].id = i;
    people_[i].position = {rng.uniform(0.0, config.width), rng.uniform(0.0, config.height)};
    const double heading = rng.uniform(0.0, 2.0 * 3.14159265358979);
    people_[i].velocity = {config.speed * std::cos(heading),
                           config.speed * std::sin(heading)};
  }
}

void World::step(Rng& rng) {
  for (Person& p : people_) {
    // Rotate heading by Gaussian noise, keep speed roughly constant.
    const double heading = std::atan2(p.velocity.y, p.velocity.x) +
                           rng.normal(0.0, config_.turn_stddev);
    const double speed = config_.speed * (0.7 + 0.6 * rng.uniform());
    p.velocity = {speed * std::cos(heading), speed * std::sin(heading)};
    p.position = p.position + p.velocity;
    // Reflect at the boundary.
    if (p.position.x < 0.0) {
      p.position.x = -p.position.x;
      p.velocity.x = -p.velocity.x;
    }
    if (p.position.x > config_.width) {
      p.position.x = 2.0 * config_.width - p.position.x;
      p.velocity.x = -p.velocity.x;
    }
    if (p.position.y < 0.0) {
      p.position.y = -p.position.y;
      p.velocity.y = -p.velocity.y;
    }
    if (p.position.y > config_.height) {
      p.position.y = 2.0 * config_.height - p.position.y;
      p.velocity.y = -p.velocity.y;
    }
  }
}

}  // namespace eugene::collab
