#include "collab/camera.hpp"

#include <cmath>

namespace eugene::collab {
namespace {

/// Wraps an angle to (−π, π].
double wrap_angle(double a) {
  while (a > 3.14159265358979) a -= 2.0 * 3.14159265358979;
  while (a <= -3.14159265358979) a += 2.0 * 3.14159265358979;
  return a;
}

}  // namespace

Camera::Camera(CameraConfig config, std::size_t id) : config_(config), id_(id) {
  EUGENE_REQUIRE(config.fov_rad > 0.0 && config.fov_rad < 2.0 * 3.14159265358979,
                 "Camera: invalid field of view");
  EUGENE_REQUIRE(config.range_m > 0.0, "Camera: non-positive range");
}

bool Camera::sees(const Vec2& point) const {
  const Vec2 rel = point - config_.position;
  const double dist = norm(rel);
  if (dist > config_.range_m || dist == 0.0) return false;
  const double angle = wrap_angle(std::atan2(rel.y, rel.x) - config_.orientation_rad);
  return std::abs(angle) <= config_.fov_rad / 2.0;
}

std::size_t Camera::true_count(const std::vector<Person>& people) const {
  std::size_t count = 0;
  for (const Person& p : people)
    if (sees(p.position)) ++count;
  return count;
}

bool Camera::occluded(const std::vector<Person>& people, std::size_t index) const {
  const Vec2 rel = people[index].position - config_.position;
  const double dist = norm(rel);
  const double angle = std::atan2(rel.y, rel.x);
  for (std::size_t j = 0; j < people.size(); ++j) {
    if (j == index) continue;
    const Vec2 rel_j = people[j].position - config_.position;
    const double dist_j = norm(rel_j);
    if (dist_j >= dist) continue;  // only closer people occlude
    const double angle_j = std::atan2(rel_j.y, rel_j.x);
    if (std::abs(wrap_angle(angle - angle_j)) < config_.occlusion_angle_rad) return true;
  }
  return false;
}

std::vector<Detection> Camera::detect(const std::vector<Person>& people, Rng& rng) const {
  std::vector<Detection> detections;
  for (std::size_t i = 0; i < people.size(); ++i) {
    if (!sees(people[i].position)) continue;
    const double dist = distance(people[i].position, config_.position);
    double p_detect = config_.detect_base -
                      config_.detect_range_penalty * (dist / config_.range_m);
    if (occluded(people, i)) p_detect *= 1.0 - config_.occlusion_miss;
    p_detect = std::max(0.0, std::min(1.0, p_detect));
    if (!rng.bernoulli(p_detect)) continue;
    Detection d;
    d.position = {people[i].position.x + rng.normal(0.0, config_.position_noise_m),
                  people[i].position.y + rng.normal(0.0, config_.position_noise_m)};
    d.camera = id_;
    d.score = p_detect;
    d.truth_id = people[i].id;
    detections.push_back(d);
  }
  // False positives: uniform inside the wedge.
  std::size_t fp = 0;
  double expected = config_.false_positives_per_frame;
  while (expected > 0.0) {
    if (rng.bernoulli(std::min(1.0, expected))) ++fp;
    expected -= 1.0;
  }
  for (std::size_t i = 0; i < fp; ++i) {
    const double angle = config_.orientation_rad +
                         rng.uniform(-config_.fov_rad / 2.0, config_.fov_rad / 2.0);
    const double dist = rng.uniform(1.0, config_.range_m);
    Detection d;
    d.position = {config_.position.x + dist * std::cos(angle),
                  config_.position.y + dist * std::sin(angle)};
    d.camera = id_;
    d.score = 0.4;
    d.is_false_positive = true;
    detections.push_back(d);
  }
  return detections;
}

double fov_overlap(const Camera& a, const Camera& b, Rng& rng, std::size_t samples) {
  EUGENE_REQUIRE(samples > 0, "fov_overlap: need samples");
  std::size_t both = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double angle = a.config().orientation_rad +
                         rng.uniform(-a.config().fov_rad / 2.0, a.config().fov_rad / 2.0);
    const double dist = rng.uniform(0.5, a.config().range_m);
    const Vec2 point{a.config().position.x + dist * std::cos(angle),
                     a.config().position.y + dist * std::sin(angle)};
    if (b.sees(point)) ++both;
  }
  return static_cast<double>(both) / static_cast<double>(samples);
}

}  // namespace eugene::collab
