// Experiment drivers for collaborative inferencing (paper §IV, Table IV):
// individual vs collaborative pipelines, latency accounting, FoV-overlap
// brokering, and rogue-camera resilience.
#pragma once

#include <optional>

#include "collab/fusion.hpp"

namespace eugene::collab {

/// Per-frame processing-latency model (§IV's Movidius numbers): a full
/// detection+identification DNN pass vs a peer-box-guided refinement.
struct LatencyModel {
  double full_pipeline_ms = 550.0;  ///< the paper's ≈550 ms/frame
  double guided_ms = 25.0;          ///< refinement seeded by shared boxes
  /// A collaborating camera re-runs the full pipeline every this many frames
  /// to refresh its tracking state; in between it runs guided refinement.
  std::size_t refresh_period = 50;
};

/// Rogue-node injection (§IV-C): one camera adds fabricated boxes.
struct RogueConfig {
  std::size_t rogue_camera = 0;
  double injected_per_frame = 3.0;
};

/// Experiment setup.
struct CollabExperimentConfig {
  WorldConfig world;
  std::vector<CameraConfig> cameras;
  FusionConfig fusion;
  LatencyModel latency;
  std::size_t num_frames = 300;
  std::uint64_t seed = 31;
  std::optional<RogueConfig> rogue;  ///< nullopt = all cameras honest
  bool trust_enabled = true;         ///< resilience service on/off
};

/// Aggregated over cameras and frames.
struct CollabMetrics {
  double detection_accuracy = 0.0;  ///< mean per-frame counting accuracy
  double mean_latency_ms = 0.0;
  double recall = 0.0;     ///< true people covered by a detection
  double precision = 0.0;  ///< detections matching a true person
};

/// Places `count` cameras evenly around the world edge, all facing the
/// center — a PETS-like dense-overlap rig.
std::vector<CameraConfig> ring_of_cameras(const WorldConfig& world, std::size_t count,
                                          double fov_rad = 1.2, double range_m = 80.0);

/// Baseline: every camera runs its own full pipeline on every frame.
CollabMetrics run_individual(const CollabExperimentConfig& config);

/// Collaborative: cameras exchange boxes, fuse trust-weighted, and run the
/// guided (cheap) pipeline between periodic full refreshes.
CollabMetrics run_collaborative(const CollabExperimentConfig& config);

/// Collaboration brokering (§IV-C): Pearson correlation of per-frame
/// detection-count series between camera pairs; pairs above `threshold` are
/// proposed as collaborators. Returns [i][j] correlations.
std::vector<std::vector<double>> count_correlation_matrix(
    const CollabExperimentConfig& config);

/// Pairs whose count correlation exceeds `threshold` (i < j).
std::vector<std::pair<std::size_t, std::size_t>> discover_collaborators(
    const std::vector<std::vector<double>>& correlation, double threshold);

}  // namespace eugene::collab
