// Camera model: field-of-view geometry and a MobileNet-SSD detector
// stand-in with calibrated failure modes (distance decay, occlusion,
// false positives) — the per-device inference pipeline of paper §IV.
#pragma once

#include "collab/world.hpp"

namespace eugene::collab {

/// Camera placement and detector quality.
struct CameraConfig {
  Vec2 position;
  double orientation_rad = 0.0;  ///< optical-axis direction
  double fov_rad = 1.2;          ///< full angular width of the view wedge
  double range_m = 45.0;         ///< maximum detection distance

  double detect_base = 0.85;     ///< detection probability at zero distance
  double detect_range_penalty = 0.45;  ///< extra miss probability at full range
  double occlusion_miss = 0.65;  ///< miss probability when occluded
  double occlusion_angle_rad = 0.06;  ///< angular proximity that occludes
  double false_positives_per_frame = 0.15;
  double position_noise_m = 0.8;  ///< ground-plane estimate noise
};

/// One detected box, reported in ground-plane coordinates.
struct Detection {
  Vec2 position;            ///< estimated ground-plane position
  std::size_t camera = 0;   ///< producer
  double score = 1.0;       ///< detector confidence
  // Evaluation-only fields (never read by the pipelines themselves):
  bool is_false_positive = false;
  std::size_t truth_id = 0;  ///< person id when not a false positive
};

/// A fixed camera with the detector stand-in.
class Camera {
 public:
  Camera(CameraConfig config, std::size_t id);

  /// Whether a ground-plane point lies in this camera's view wedge.
  bool sees(const Vec2& point) const;

  /// Ground-truth people currently visible (inside the wedge) — the
  /// denominator of counting accuracy.
  std::size_t true_count(const std::vector<Person>& people) const;

  /// Runs the detector on the current frame: per visible person a Bernoulli
  /// detection whose probability decays with distance and occlusion, plus
  /// Poisson-ish false positives inside the wedge.
  std::vector<Detection> detect(const std::vector<Person>& people, Rng& rng) const;

  const CameraConfig& config() const { return config_; }
  std::size_t id() const { return id_; }

 private:
  /// Is `person` occluded by a closer person at a similar viewing angle?
  bool occluded(const std::vector<Person>& people, std::size_t index) const;

  CameraConfig config_;
  std::size_t id_;
};

/// Approximate ground-truth FoV overlap fraction between two cameras
/// (Monte-Carlo over camera a's wedge). Used as the brokering oracle.
double fov_overlap(const Camera& a, const Camera& b, Rng& rng,
                   std::size_t samples = 2000);

}  // namespace eugene::collab
