// Box sharing, remapping, fusion, and trust management — the collaborative
// pipeline of paper §IV-B and the resilience service of §IV-C.
#pragma once

#include "collab/camera.hpp"

namespace eugene::collab {

/// Fusion knobs.
struct FusionConfig {
  double fusion_radius_m = 3.0;   ///< detections closer than this are one person
  double remap_noise_m = 0.5;     ///< extra noise added when remapping peer boxes
  double min_cluster_trust = 0.5; ///< peer-only clusters need this much trust
  /// EWMA step of the trust update: trust += rate * (outcome - trust). Must
  /// lie in (0, 1]; small values forgive isolated misses, 1.0 tracks only
  /// the latest observation.
  double trust_learning_rate = 0.08;
};

/// Per-camera trust scores maintained by the resilience service: peer boxes
/// that keep failing local verification erode their producer's trust
/// ("proactively uncover faulty operational situations", §IV-C).
class TrustManager {
 public:
  /// `learning_rate` is validated into (0, 1] (see
  /// FusionConfig::trust_learning_rate, the canonical source of the value).
  explicit TrustManager(std::size_t num_cameras, double initial_trust = 1.0,
                        double learning_rate = 0.08);

  /// Records whether a box from `camera` was corroborated locally. The
  /// updated trust is clamped into [0, 1] so accumulated floating-point
  /// drift can never push a score outside its meaningful range.
  void observe(std::size_t camera, bool verified);

  double trust(std::size_t camera) const;
  std::size_t num_cameras() const { return trust_.size(); }
  double learning_rate() const { return learning_rate_; }

 private:
  std::vector<double> trust_;
  double learning_rate_;
};

/// Remaps a peer detection into the receiving camera's coordinate frame.
/// Our world already uses a common ground plane (the paper's "suitably
/// remapped to a common coordinate space"), so remapping only adds the
/// calibration/transfer noise.
Detection remap(const Detection& peer_box, const Camera& receiver,
                const FusionConfig& config, Rng& rng);

/// Fuses a camera's own detections with remapped peer boxes that fall in its
/// FoV. Greedy radius clustering; each cluster is one person. Peer-only
/// clusters are kept only if their producers' summed trust passes the
/// threshold. Also feeds verification outcomes into `trust`.
std::vector<Detection> fuse_detections(const Camera& receiver,
                                       const std::vector<Detection>& own,
                                       const std::vector<Detection>& peers,
                                       const FusionConfig& config,
                                       TrustManager* trust, Rng& rng);

/// Per-frame people-counting accuracy: 1 − |estimate − truth| / max(truth, 1),
/// clamped to [0, 1].
double counting_accuracy(std::size_t estimated, std::size_t truth);

}  // namespace eugene::collab
