// Box sharing, remapping, fusion, and trust management — the collaborative
// pipeline of paper §IV-B and the resilience service of §IV-C.
#pragma once

#include "collab/camera.hpp"

namespace eugene::collab {

/// Fusion knobs.
struct FusionConfig {
  double fusion_radius_m = 3.0;   ///< detections closer than this are one person
  double remap_noise_m = 0.5;     ///< extra noise added when remapping peer boxes
  double min_cluster_trust = 0.5; ///< peer-only clusters need this much trust
};

/// Per-camera trust scores maintained by the resilience service: peer boxes
/// that keep failing local verification erode their producer's trust
/// ("proactively uncover faulty operational situations", §IV-C).
class TrustManager {
 public:
  explicit TrustManager(std::size_t num_cameras, double initial_trust = 1.0);

  /// Records whether a box from `camera` was corroborated locally.
  void observe(std::size_t camera, bool verified);

  double trust(std::size_t camera) const;
  std::size_t num_cameras() const { return trust_.size(); }

 private:
  std::vector<double> trust_;
  double learning_rate_ = 0.08;
};

/// Remaps a peer detection into the receiving camera's coordinate frame.
/// Our world already uses a common ground plane (the paper's "suitably
/// remapped to a common coordinate space"), so remapping only adds the
/// calibration/transfer noise.
Detection remap(const Detection& peer_box, const Camera& receiver,
                const FusionConfig& config, Rng& rng);

/// Fuses a camera's own detections with remapped peer boxes that fall in its
/// FoV. Greedy radius clustering; each cluster is one person. Peer-only
/// clusters are kept only if their producers' summed trust passes the
/// threshold. Also feeds verification outcomes into `trust`.
std::vector<Detection> fuse_detections(const Camera& receiver,
                                       const std::vector<Detection>& own,
                                       const std::vector<Detection>& peers,
                                       const FusionConfig& config,
                                       TrustManager* trust, Rng& rng);

/// Per-frame people-counting accuracy: 1 − |estimate − truth| / max(truth, 1),
/// clamped to [0, 1].
double counting_accuracy(std::size_t estimated, std::size_t truth);

}  // namespace eugene::collab
