// Ground-plane world simulator — the PETS-2009 stand-in (DESIGN.md §2).
//
// People random-walk on a bounded 2-D plane; cameras (camera.hpp) observe
// them with distance- and occlusion-dependent detection failures. Table IV's
// claims are about what box sharing between overlapping views buys, which
// this world reproduces without the original video.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace eugene::collab {

/// 2-D point/vector on the ground plane (meters).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
};

double norm(const Vec2& v);
double distance(const Vec2& a, const Vec2& b);

/// One tracked person.
struct Person {
  std::size_t id = 0;
  Vec2 position;
  Vec2 velocity;
};

/// World knobs.
struct WorldConfig {
  double width = 100.0;
  double height = 100.0;
  std::size_t num_people = 10;
  double speed = 1.2;            ///< mean step length per frame
  double turn_stddev = 0.5;      ///< heading noise per frame (radians)
};

/// People random-walking with reflective boundaries.
class World {
 public:
  World(const WorldConfig& config, Rng& rng);

  /// Advances all trajectories one frame.
  void step(Rng& rng);

  const std::vector<Person>& people() const { return people_; }
  const WorldConfig& config() const { return config_; }

 private:
  WorldConfig config_;
  std::vector<Person> people_;
};

}  // namespace eugene::collab
