#include "reduce/simple_cnn.hpp"

#include "common/check.hpp"

namespace eugene::reduce {

SimpleCnn::SimpleCnn(const SimpleCnnConfig& config) : config_(config) {
  EUGENE_REQUIRE(!config.conv_channels.empty(), "SimpleCnn: need at least one conv layer");
  Rng rng(config.seed);
  std::size_t channels = config.in_channels;
  for (std::size_t layer = 0; layer < config.conv_channels.size(); ++layer) {
    const std::size_t c_out = config.conv_channels[layer];
    EUGENE_REQUIRE(c_out > 0, "SimpleCnn: zero-channel conv layer");
    tensor::Conv2dGeometry g;
    g.in_channels = channels;
    g.out_channels = c_out;
    g.in_height = config.height;
    g.in_width = config.width;
    auto conv = std::make_unique<nn::Conv2d>(g, rng);
    convs_.push_back(conv.get());
    net_.add(std::move(conv));
    // No normalization on the final conv block: ChannelNorm zeroes each
    // channel's spatial mean, which would make the downstream global
    // average pool nearly input-independent after ReLU.
    if (layer + 1 < config.conv_channels.size()) {
      auto norm = std::make_unique<nn::ChannelNorm>(c_out);
      norms_.push_back(norm.get());
      net_.add(std::move(norm));
    }
    net_.add(std::make_unique<nn::ReLU>());
    channels = c_out;
  }
  net_.add(std::make_unique<nn::GlobalAvgPool>());
  auto dense = std::make_unique<nn::Dense>(channels, config.num_classes, rng);
  head_ = dense.get();
  net_.add(std::move(dense));
}

tensor::Tensor SimpleCnn::forward(const tensor::Tensor& input, bool training) {
  return net_.forward(input, training);
}

nn::Conv2d& SimpleCnn::conv(std::size_t i) {
  EUGENE_REQUIRE(i < convs_.size(), "SimpleCnn::conv index out of range");
  return *convs_[i];
}

nn::ChannelNorm& SimpleCnn::norm(std::size_t i) {
  EUGENE_REQUIRE(i < norms_.size(), "SimpleCnn::norm index out of range");
  return *norms_[i];
}

nn::Dense& SimpleCnn::head() {
  EUGENE_CHECK(head_ != nullptr) << "SimpleCnn: head missing";
  return *head_;
}

std::size_t SimpleCnn::param_count() {
  std::size_t count = 0;
  for (const auto& p : net_.params()) count += p.value->numel();
  return count;
}

}  // namespace eugene::reduce
