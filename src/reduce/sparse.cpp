#include "reduce/sparse.hpp"

#include "common/error.hpp"

namespace eugene::reduce {

using tensor::Tensor;

CsrMatrix CsrMatrix::from_dense(const Tensor& dense) {
  EUGENE_REQUIRE(dense.rank() == 2, "CsrMatrix: expected a matrix");
  CsrMatrix m;
  m.rows_ = dense.dim(0);
  m.cols_ = dense.dim(1);
  m.row_ptr_.reserve(m.rows_ + 1);
  m.row_ptr_.push_back(0);
  for (std::size_t i = 0; i < m.rows_; ++i) {
    for (std::size_t j = 0; j < m.cols_; ++j) {
      const float v = dense.at(i, j);
      if (v != 0.0f) {
        m.values_.push_back(v);
        m.col_idx_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    m.row_ptr_.push_back(static_cast<std::uint32_t>(m.values_.size()));
  }
  return m;
}

std::vector<float> CsrMatrix::multiply(std::span<const float> x) const {
  EUGENE_REQUIRE(x.size() == cols_, "CsrMatrix::multiply: dimension mismatch");
  std::vector<float> y(rows_, 0.0f);
  for (std::size_t i = 0; i < rows_; ++i) {
    float acc = 0.0f;
    for (std::uint32_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      acc += values_[k] * x[col_idx_[k]];
    y[i] = acc;
  }
  return y;
}

std::vector<float> dense_multiply(const Tensor& a, std::span<const float> x) {
  EUGENE_REQUIRE(a.rank() == 2, "dense_multiply: expected a matrix");
  EUGENE_REQUIRE(x.size() == a.dim(1), "dense_multiply: dimension mismatch");
  const std::size_t rows = a.dim(0), cols = a.dim(1);
  std::vector<float> y(rows, 0.0f);
  const float* ap = a.raw();
  for (std::size_t i = 0; i < rows; ++i) {
    float acc = 0.0f;
    const float* row = ap + i * cols;
    for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

}  // namespace eugene::reduce
