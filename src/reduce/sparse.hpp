// Compressed-sparse-row matrix — the "edge pruning" execution baseline.
//
// The paper (§II-B, citing DeepIoT): zeroed edges give a sparse matrix whose
// storage and compute savings "do not scale proportionally to the fraction
// of zero entries", because sparse algebra carries per-element index
// overhead. This CSR implementation plus bench_reduction demonstrates the
// effect on real hardware.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace eugene::reduce {

/// CSR matrix with float values.
class CsrMatrix {
 public:
  /// Builds from a dense matrix, dropping exact zeros.
  static CsrMatrix from_dense(const tensor::Tensor& dense);

  /// y = A·x.
  std::vector<float> multiply(std::span<const float> x) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// Bytes needed to store the CSR structure (values + column indices +
  /// row pointers) — compare with rows·cols·4 for dense.
  std::size_t storage_bytes() const {
    return values_.size() * (sizeof(float) + sizeof(std::uint32_t)) +
           row_ptr_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> values_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<std::uint32_t> row_ptr_;
};

/// Dense y = A·x reference used in the comparison benches.
std::vector<float> dense_multiply(const tensor::Tensor& a, std::span<const float> x);

}  // namespace eugene::reduce
