// A plain convolutional classifier with typed layer access — the model the
// reduction service (paper §II-B) prunes and the caching service retrains.
// Structure: [Conv → ChannelNorm → ReLU] × (L−1) → Conv → ReLU →
// GlobalAvgPool → Dense. The final block is un-normalized so the pooled
// features stay input-dependent (see the constructor note).
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace eugene::reduce {

/// Architecture of a SimpleCnn.
struct SimpleCnnConfig {
  std::size_t in_channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t num_classes = 10;
  std::vector<std::size_t> conv_channels = {16, 16, 16};
  std::uint64_t seed = 11;
};

/// Single-exit CNN with direct access to each layer's weights, which the
/// channel-pruning transformation needs.
class SimpleCnn {
 public:
  explicit SimpleCnn(const SimpleCnnConfig& config);

  tensor::Tensor forward(const tensor::Tensor& input, bool training = false);

  /// Underlying container (for the generic trainer).
  nn::Sequential& net() { return net_; }

  const SimpleCnnConfig& config() const { return config_; }
  std::size_t num_conv_layers() const { return convs_.size(); }
  nn::Conv2d& conv(std::size_t i);
  /// Norm of conv block i; valid for i < num_conv_layers() − 1.
  nn::ChannelNorm& norm(std::size_t i);
  nn::Dense& head();

  /// Forward FLOPs and learnable parameter count — the reduction service's
  /// size/cost accounting.
  double flops() const { return net_.flops(); }
  std::size_t param_count();

 private:
  SimpleCnnConfig config_;
  nn::Sequential net_;
  std::vector<nn::Conv2d*> convs_;       // owned by net_
  std::vector<nn::ChannelNorm*> norms_;  // owned by net_
  nn::Dense* head_ = nullptr;            // owned by net_
};

}  // namespace eugene::reduce
