// Model reduction (paper §II-B): edge pruning vs node (channel) pruning.
//
// Edge pruning zeroes the smallest-magnitude weights, producing a sparse
// matrix whose computational savings do NOT scale with sparsity (see
// sparse.hpp and bench_reduction). Node pruning — the DeepIoT approach the
// paper endorses — removes whole channels, yielding a smaller *dense* model
// that is proportionally cheaper.
#pragma once

#include "data/dataset.hpp"
#include "nn/train.hpp"
#include "reduce/simple_cnn.hpp"

namespace eugene::reduce {

/// Zeroes the `fraction` of entries with the smallest |w| in `weights`.
/// Returns the number of entries zeroed.
std::size_t prune_edges_by_magnitude(tensor::Tensor& weights, double fraction);

/// Fraction of exactly-zero entries.
double sparsity(const tensor::Tensor& weights);

/// Per-channel importance of a conv layer: L1 norm of each output filter.
std::vector<double> channel_importance(nn::Conv2d& conv);

/// Builds a new SimpleCnn keeping the ceil(keep_fraction · C) most important
/// channels of every conv layer (at least `min_channels`), copying the
/// surviving weights so the reduced model starts near the original.
SimpleCnn prune_channels(SimpleCnn& source, double keep_fraction,
                         std::size_t min_channels = 2);

/// Post-pruning fine-tuning (thin wrapper over the generic trainer).
void finetune(SimpleCnn& model, const data::Dataset& train_set,
              const nn::ClassifierTrainConfig& config);

/// Accuracy of a SimpleCnn on a dataset.
double accuracy(SimpleCnn& model, const data::Dataset& dataset);

}  // namespace eugene::reduce
