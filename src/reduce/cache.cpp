#include "reduce/cache.hpp"

#include <algorithm>
#include <numeric>

#include "common/stats.hpp"

namespace eugene::reduce {

using tensor::Tensor;

// ---------------------------------------------------------- FrequencyTracker

FrequencyTracker::FrequencyTracker(std::size_t window_size) : window_size_(window_size) {
  EUGENE_REQUIRE(window_size > 0, "FrequencyTracker: zero window");
}

void FrequencyTracker::observe(std::size_t label) {
  if (label >= counts_.size()) counts_.resize(label + 1, 0);
  window_.push_back(label);
  ++counts_[label];
  if (window_.size() > window_size_) {
    --counts_[window_.front()];
    window_.pop_front();
  }
}

std::vector<std::size_t> FrequencyTracker::frequent_set(double coverage) const {
  EUGENE_REQUIRE(coverage > 0.0 && coverage <= 1.0,
                 "frequent_set: coverage outside (0,1]");
  if (window_.empty()) return {};
  std::vector<std::size_t> order(counts_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return counts_[a] > counts_[b]; });
  std::vector<std::size_t> result;
  std::size_t covered = 0;
  const std::size_t needed =
      static_cast<std::size_t>(std::ceil(coverage * static_cast<double>(window_.size())));
  for (std::size_t label : order) {
    if (counts_[label] == 0) break;
    result.push_back(label);
    covered += counts_[label];
    if (covered >= needed) break;
  }
  return result;
}

double FrequencyTracker::share(std::size_t label) const {
  if (window_.empty() || label >= counts_.size()) return 0.0;
  return static_cast<double>(counts_[label]) / static_cast<double>(window_.size());
}

// ---------------------------------------------------------- build_cache_model

CacheModel build_cache_model(const data::Dataset& train_set,
                             const std::vector<std::size_t>& frequent_classes,
                             const CacheBuildConfig& config, Rng& rng) {
  EUGENE_REQUIRE(!frequent_classes.empty(), "build_cache_model: empty frequent set");
  EUGENE_REQUIRE(!train_set.empty(), "build_cache_model: empty training set");

  // Remap labels: frequent class i → i; everything else → OTHER, downsampled
  // so it does not drown the positives.
  const std::size_t other = frequent_classes.size();
  data::Dataset remapped;
  std::size_t frequent_count = 0;
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    const auto it = std::find(frequent_classes.begin(), frequent_classes.end(),
                              train_set.labels[i]);
    if (it != frequent_classes.end()) ++frequent_count;
  }
  const double other_keep_prob = std::min(
      1.0, config.other_downsample * static_cast<double>(frequent_count) /
               std::max<double>(1.0, static_cast<double>(train_set.size() - frequent_count)));
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    const auto it = std::find(frequent_classes.begin(), frequent_classes.end(),
                              train_set.labels[i]);
    if (it != frequent_classes.end()) {
      remapped.push(train_set.samples[i],
                    static_cast<std::size_t>(it - frequent_classes.begin()),
                    train_set.difficulty[i]);
    } else if (rng.bernoulli(other_keep_prob)) {
      remapped.push(train_set.samples[i], other, train_set.difficulty[i]);
    }
  }
  EUGENE_REQUIRE(!remapped.empty(), "build_cache_model: remapped set is empty");

  SimpleCnnConfig arch = config.architecture;
  arch.num_classes = other + 1;
  CacheModel cache{SimpleCnn(arch), frequent_classes, other};
  nn::train_classifier(cache.model.net(), remapped.samples, remapped.labels,
                       config.training);
  return cache;
}

// ------------------------------------------------------ CachedInferenceService

CachedInferenceService::CachedInferenceService(CacheModel cache,
                                               nn::StagedModel& server_model,
                                               double miss_confidence_threshold,
                                               CacheCostModel costs)
    : cache_(std::move(cache)),
      server_(server_model),
      threshold_(miss_confidence_threshold),
      costs_(costs) {
  EUGENE_REQUIRE(threshold_ >= 0.0 && threshold_ <= 1.0,
                 "CachedInferenceService: threshold outside [0,1]");
}

CachedResult CachedInferenceService::infer(const Tensor& input) {
  const Tensor logits = cache_.model.forward(input);
  const std::vector<float> probs = nn::softmax_probs(logits);
  const std::size_t cache_label = argmax(probs);
  const double confidence = probs[cache_label];
  const std::optional<std::size_t> original = cache_.to_original(cache_label);

  CachedResult result;
  if (original.has_value() && confidence >= threshold_) {
    ++hits_;
    result.label = *original;
    result.confidence = confidence;
    result.cache_hit = true;
    result.latency_ms = costs_.device_ms;
    return result;
  }

  // Cache miss: full network execution on the server.
  ++misses_;
  const auto outputs = server_.forward_all(input);
  const nn::StageOutput& final = outputs.back();
  result.label = final.predicted_label;
  result.confidence = final.confidence;
  result.cache_hit = false;
  result.latency_ms = costs_.device_ms + costs_.network_ms + costs_.server_ms;
  return result;
}

double CachedInferenceService::hit_rate() const {
  const std::size_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

// -------------------------------------------------------------- CacheController

CacheController::CacheController(std::size_t num_classes, Config config)
    : config_(config), tracker_(config.decision_window * 4) {
  EUGENE_REQUIRE(num_classes >= 2, "CacheController: need at least two classes");
  EUGENE_REQUIRE(config_.max_cache_classes >= 1, "CacheController: zero cache classes");
}

std::vector<std::size_t> CacheController::recommended_classes() const {
  std::vector<std::size_t> set = tracker_.frequent_set(config_.coverage);
  if (set.size() > config_.max_cache_classes) set.resize(config_.max_cache_classes);
  return set;
}

namespace {

/// Order-insensitive class-set equality: the frequent set is ranked by
/// traffic share, and two classes swapping rank is not a reason to rebuild.
bool same_class_set(std::vector<std::size_t> a, std::vector<std::size_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

CacheController::Action CacheController::observe(std::size_t label,
                                                 std::optional<bool> cache_hit) {
  tracker_.observe(label);
  if (cache_hit.has_value()) {
    recent_hits_.push_back(*cache_hit);
    if (recent_hits_.size() > config_.decision_window) recent_hits_.pop_front();
  }
  if (++since_decision_ < config_.decision_window) return Action::None;
  since_decision_ = 0;

  const std::vector<std::size_t> recommended = recommended_classes();
  if (!cache_active_) {
    if (!recommended.empty() &&
        tracker_.observations() >= config_.decision_window) {
      built_classes_ = recommended;
      return Action::Build;
    }
    return Action::None;
  }

  // Active cache: check health.
  if (recent_hits_.size() >= config_.decision_window / 2) {
    std::size_t hits = 0;
    for (bool h : recent_hits_) hits += h ? 1 : 0;
    const double rate = static_cast<double>(hits) /
                        static_cast<double>(recent_hits_.size());
    if (rate < config_.min_hit_rate) {
      // Either the traffic moved to a new frequent set (rebuild) or it has
      // no stable frequent set any more (drop).
      if (!recommended.empty() && !same_class_set(recommended, built_classes_)) {
        built_classes_ = recommended;
        return Action::Rebuild;
      }
      return Action::Drop;
    }
  }
  if (!recommended.empty() && !same_class_set(recommended, built_classes_)) {
    built_classes_ = recommended;
    return Action::Rebuild;
  }
  return Action::None;
}

}  // namespace eugene::reduce
