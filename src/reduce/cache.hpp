// Intelligent-function caching (paper §II-B):
//
// "Recognizing that the most common classification results point to those
// specific items, Eugene may retrain a neural network with only those items
// as positive examples, compress the result, and download the compressed
// model to the device. ... The identification of an uncommon occurrence is
// viewed as a cache miss that triggers full network execution on the server."
//
// Pieces: a frequency tracker that detects the frequent-class set, a cache
// model builder (reduced network over frequent classes + an OTHER bucket),
// the device-side cached-inference path with server fallback, and a
// controller that decides when to (re)build or drop the cached model.
#pragma once

#include <deque>
#include <optional>

#include "nn/staged_model.hpp"
#include "reduce/pruning.hpp"

namespace eugene::reduce {

/// Sliding-window class-frequency tracker.
class FrequencyTracker {
 public:
  explicit FrequencyTracker(std::size_t window_size);

  void observe(std::size_t label);

  /// Smallest class set whose traffic share reaches `coverage`, most
  /// frequent first. Empty until the window has data.
  std::vector<std::size_t> frequent_set(double coverage) const;

  /// Traffic share of one class in the window.
  double share(std::size_t label) const;

  std::size_t observations() const { return window_.size(); }

 private:
  std::size_t window_size_;
  std::deque<std::size_t> window_;
  std::vector<std::size_t> counts_;
};

/// Reduced model over the frequent classes plus an OTHER bucket.
struct CacheModel {
  SimpleCnn model;
  std::vector<std::size_t> frequent_classes;  ///< cache label i ↔ original class
  std::size_t other_label = 0;                ///< == frequent_classes.size()

  /// Maps a cache-model prediction back to the original label space;
  /// std::nullopt means OTHER (cache miss).
  std::optional<std::size_t> to_original(std::size_t cache_label) const {
    if (cache_label >= frequent_classes.size()) return std::nullopt;
    return frequent_classes[cache_label];
  }
};

/// Cache-model training knobs.
struct CacheBuildConfig {
  SimpleCnnConfig architecture;          ///< num_classes is overwritten
  nn::ClassifierTrainConfig training;
  /// Per-frequent-class share of OTHER-class examples kept in the remapped
  /// training set (too many OTHER samples drown the positives).
  double other_downsample = 1.0;
};

/// Retrains a reduced network on the frequent classes + OTHER.
CacheModel build_cache_model(const data::Dataset& train_set,
                             const std::vector<std::size_t>& frequent_classes,
                             const CacheBuildConfig& config, Rng& rng);

/// Device/server latency split for the cached path.
struct CacheCostModel {
  double device_ms = 5.0;    ///< cache model on the end device
  double network_ms = 40.0;  ///< round trip to the server
  double server_ms = 15.0;   ///< full model on the server
};

/// Outcome of one cached inference.
struct CachedResult {
  std::size_t label = 0;
  double confidence = 0.0;
  bool cache_hit = false;
  double latency_ms = 0.0;  ///< modeled
};

/// Device-side inference with server fallback.
class CachedInferenceService {
 public:
  /// `server_model` must outlive the service.
  CachedInferenceService(CacheModel cache, nn::StagedModel& server_model,
                         double miss_confidence_threshold, CacheCostModel costs = {});

  /// Runs the cache model; OTHER predictions or confidence below the
  /// threshold fall back to full server execution.
  CachedResult infer(const tensor::Tensor& input);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  double hit_rate() const;

 private:
  CacheModel cache_;
  nn::StagedModel& server_;
  double threshold_;
  CacheCostModel costs_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Decides when the cached model should be (re)built or dropped
/// (the paper's open questions, made concrete):
///   * build when the frequent set covers enough traffic;
///   * rebuild when the frequent set drifts;
///   * drop when the hit rate over a recent window falls below a floor.
class CacheController {
 public:
  struct Config {
    double coverage = 0.7;           ///< traffic share the frequent set must reach
    std::size_t max_cache_classes = 4;
    double min_hit_rate = 0.5;       ///< below this, drop the cache
    std::size_t decision_window = 50;  ///< observations between decisions
  };

  explicit CacheController(std::size_t num_classes, Config config);

  enum class Action { None, Build, Rebuild, Drop };

  /// Feed one observed request label (+ whether the cache hit, if present).
  /// Returns the action the service should take now.
  Action observe(std::size_t label, std::optional<bool> cache_hit);

  /// The frequent set the controller currently recommends.
  std::vector<std::size_t> recommended_classes() const;

  bool cache_active() const { return cache_active_; }
  void mark_built() { cache_active_ = true; recent_hits_.clear(); }
  void mark_dropped() { cache_active_ = false; recent_hits_.clear(); }

 private:
  Config config_;
  FrequencyTracker tracker_;
  std::deque<bool> recent_hits_;
  std::vector<std::size_t> built_classes_;
  bool cache_active_ = false;
  std::size_t since_decision_ = 0;
};

}  // namespace eugene::reduce
