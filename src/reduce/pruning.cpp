#include "reduce/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eugene::reduce {

using tensor::Tensor;

std::size_t prune_edges_by_magnitude(Tensor& weights, double fraction) {
  EUGENE_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                 "prune_edges_by_magnitude: fraction outside [0,1]");
  const std::size_t n = weights.numel();
  const std::size_t to_zero = static_cast<std::size_t>(fraction * static_cast<double>(n));
  if (to_zero == 0) return 0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + to_zero - 1, order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return std::abs(weights.data()[a]) < std::abs(weights.data()[b]);
                   });
  for (std::size_t i = 0; i < to_zero; ++i) weights.data()[order[i]] = 0.0f;
  return to_zero;
}

double sparsity(const Tensor& weights) {
  EUGENE_REQUIRE(weights.numel() > 0, "sparsity: empty tensor");
  std::size_t zeros = 0;
  for (float v : weights.data())
    if (v == 0.0f) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(weights.numel());
}

std::vector<double> channel_importance(nn::Conv2d& conv) {
  const std::size_t out_channels = conv.geometry().out_channels;
  const std::size_t cols = conv.weights().dim(1);
  std::vector<double> importance(out_channels, 0.0);
  for (std::size_t oc = 0; oc < out_channels; ++oc)
    for (std::size_t j = 0; j < cols; ++j)
      importance[oc] += std::abs(conv.weights().at(oc, j));
  return importance;
}

namespace {

/// Indices of the `keep` most important channels, in ascending order (so the
/// reduced model preserves relative channel layout).
std::vector<std::size_t> top_channels(const std::vector<double>& importance,
                                      std::size_t keep) {
  std::vector<std::size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return importance[a] > importance[b];
                    });
  std::vector<std::size_t> kept(order.begin(), order.begin() + keep);
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace

SimpleCnn prune_channels(SimpleCnn& source, double keep_fraction,
                         std::size_t min_channels) {
  EUGENE_REQUIRE(keep_fraction > 0.0 && keep_fraction <= 1.0,
                 "prune_channels: keep_fraction outside (0,1]");

  // Choose surviving channels per conv layer.
  const std::size_t num_layers = source.num_conv_layers();
  std::vector<std::vector<std::size_t>> kept(num_layers);
  SimpleCnnConfig reduced_cfg = source.config();
  for (std::size_t l = 0; l < num_layers; ++l) {
    const auto importance = channel_importance(source.conv(l));
    const std::size_t keep = std::max(
        min_channels, static_cast<std::size_t>(
                          std::ceil(keep_fraction * static_cast<double>(importance.size()))));
    EUGENE_REQUIRE(keep <= importance.size(), "prune_channels: min_channels too large");
    kept[l] = top_channels(importance, keep);
    reduced_cfg.conv_channels[l] = keep;
  }

  SimpleCnn reduced(reduced_cfg);

  // Copy surviving weights. Conv weight layout: [C_out, C_in·k·k] with the
  // column index (c_in·k + ky)·k + kx; removing an input channel removes a
  // contiguous k·k block per row.
  const std::size_t k2 =
      source.conv(0).geometry().kernel * source.conv(0).geometry().kernel;
  for (std::size_t l = 0; l < num_layers; ++l) {
    nn::Conv2d& src = source.conv(l);
    nn::Conv2d& dst = reduced.conv(l);
    const std::vector<std::size_t> in_kept =
        l == 0 ? [&] {
          std::vector<std::size_t> all(src.geometry().in_channels);
          std::iota(all.begin(), all.end(), 0);
          return all;
        }()
               : kept[l - 1];
    for (std::size_t r = 0; r < kept[l].size(); ++r) {
      const std::size_t src_row = kept[l][r];
      for (std::size_t c = 0; c < in_kept.size(); ++c) {
        const std::size_t src_col0 = in_kept[c] * k2;
        for (std::size_t j = 0; j < k2; ++j)
          dst.weights().at(r, c * k2 + j) = src.weights().at(src_row, src_col0 + j);
      }
      dst.bias().at(r) = src.bias().at(src_row);
    }
    // ChannelNorm gain/bias for surviving channels (the final conv block
    // has no norm; see SimpleCnn's constructor).
    if (l + 1 < num_layers) {
      auto src_params = source.norm(l).params();
      auto dst_params = reduced.norm(l).params();
      for (std::size_t r = 0; r < kept[l].size(); ++r) {
        dst_params[0].value->at(r) = src_params[0].value->at(kept[l][r]);
        dst_params[1].value->at(r) = src_params[1].value->at(kept[l][r]);
      }
    }
  }

  // Dense head: columns follow the last conv layer's surviving channels.
  nn::Dense& src_head = source.head();
  nn::Dense& dst_head = reduced.head();
  const auto& last_kept = kept[num_layers - 1];
  for (std::size_t row = 0; row < src_head.out_features(); ++row) {
    for (std::size_t c = 0; c < last_kept.size(); ++c)
      dst_head.weights().at(row, c) = src_head.weights().at(row, last_kept[c]);
    dst_head.bias().at(row) = src_head.bias().at(row);
  }
  return reduced;
}

void finetune(SimpleCnn& model, const data::Dataset& train_set,
              const nn::ClassifierTrainConfig& config) {
  nn::train_classifier(model.net(), train_set.samples, train_set.labels, config);
}

double accuracy(SimpleCnn& model, const data::Dataset& dataset) {
  return nn::classifier_accuracy(model.net(), dataset.samples, dataset.labels);
}

}  // namespace eugene::reduce
