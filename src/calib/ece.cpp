#include "calib/ece.hpp"

#include <cmath>

#include "common/error.hpp"

namespace eugene::calib {

std::vector<ReliabilityBin> reliability_diagram(std::span<const std::size_t> predicted,
                                                std::span<const std::size_t> truth,
                                                std::span<const float> confidence,
                                                std::size_t num_bins) {
  EUGENE_REQUIRE(predicted.size() == truth.size() && truth.size() == confidence.size(),
                 "reliability_diagram: input size mismatch");
  EUGENE_REQUIRE(num_bins > 0, "reliability_diagram: need at least one bin");

  std::vector<ReliabilityBin> bins(num_bins);
  std::vector<double> acc_sum(num_bins, 0.0), conf_sum(num_bins, 0.0);
  for (std::size_t m = 0; m < num_bins; ++m) {
    bins[m].lower = static_cast<double>(m) / static_cast<double>(num_bins);
    bins[m].upper = static_cast<double>(m + 1) / static_cast<double>(num_bins);
  }
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double c = confidence[i];
    EUGENE_REQUIRE(c >= 0.0 && c <= 1.0, "reliability_diagram: confidence outside [0,1]");
    // Bin m covers ((m)/M, (m+1)/M]; confidence 0 lands in the first bin.
    std::size_t m = c <= 0.0 ? 0
                             : static_cast<std::size_t>(std::ceil(c * num_bins)) - 1;
    if (m >= num_bins) m = num_bins - 1;
    ++bins[m].count;
    acc_sum[m] += predicted[i] == truth[i] ? 1.0 : 0.0;
    conf_sum[m] += c;
  }
  for (std::size_t m = 0; m < num_bins; ++m) {
    if (bins[m].count == 0) continue;
    bins[m].accuracy = acc_sum[m] / static_cast<double>(bins[m].count);
    bins[m].confidence = conf_sum[m] / static_cast<double>(bins[m].count);
  }
  return bins;
}

double expected_calibration_error(std::span<const std::size_t> predicted,
                                  std::span<const std::size_t> truth,
                                  std::span<const float> confidence,
                                  std::size_t num_bins) {
  EUGENE_REQUIRE(!predicted.empty(), "ece: empty inputs");
  const auto bins = reliability_diagram(predicted, truth, confidence, num_bins);
  const double n = static_cast<double>(predicted.size());
  double ece = 0.0;
  for (const auto& bin : bins) {
    if (bin.count == 0) continue;
    ece += (static_cast<double>(bin.count) / n) * std::abs(bin.accuracy - bin.confidence);
  }
  return ece;
}

double overall_accuracy(std::span<const std::size_t> predicted,
                        std::span<const std::size_t> truth) {
  EUGENE_REQUIRE(predicted.size() == truth.size() && !predicted.empty(),
                 "overall_accuracy: bad inputs");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == truth[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double overall_confidence(std::span<const float> confidence) {
  EUGENE_REQUIRE(!confidence.empty(), "overall_confidence: empty input");
  double sum = 0.0;
  for (float c : confidence) sum += c;
  return sum / static_cast<double>(confidence.size());
}

double suggest_alpha_sign(double accuracy, double confidence, double magnitude) {
  EUGENE_REQUIRE(magnitude >= 0.0, "suggest_alpha_sign: negative magnitude");
  // With L = CE + α·H, a positive α *penalizes* entropy (sharper softmax,
  // higher confidence) and a negative α rewards it (softer, lower
  // confidence). So: conf < acc (confidence underestimates) → sharpen →
  // α > 0; conf > acc (overestimates) → soften → α < 0.
  //
  // Note: the paper's prose states the opposite mapping ("when the
  // confidence underestimates the accuracy, we set α < 0"), which is
  // inconsistent with its own Eq. 4 under gradient descent; we implement
  // the physically consistent direction. calibrate_heads_entropy() grid
  // searches both signs regardless, so the system does not depend on
  // this heuristic being right.
  return confidence < accuracy ? magnitude : -magnitude;
}

}  // namespace eugene::calib
