#include "calib/evaluation.hpp"

#include "calib/ece.hpp"

namespace eugene::calib {

using tensor::Tensor;

std::vector<std::size_t> StagedEvaluation::predicted(std::size_t stage) const {
  EUGENE_REQUIRE(stage < records.size(), "predicted: stage out of range");
  std::vector<std::size_t> out;
  out.reserve(records[stage].size());
  for (const auto& r : records[stage]) out.push_back(r.predicted);
  return out;
}

std::vector<std::size_t> StagedEvaluation::truth(std::size_t stage) const {
  EUGENE_REQUIRE(stage < records.size(), "truth: stage out of range");
  std::vector<std::size_t> out;
  out.reserve(records[stage].size());
  for (const auto& r : records[stage]) out.push_back(r.truth);
  return out;
}

std::vector<float> StagedEvaluation::confidence(std::size_t stage) const {
  EUGENE_REQUIRE(stage < records.size(), "confidence: stage out of range");
  std::vector<float> out;
  out.reserve(records[stage].size());
  for (const auto& r : records[stage]) out.push_back(r.confidence);
  return out;
}

StagedEvaluation evaluate_staged(nn::StagedModel& model, const data::Dataset& dataset) {
  EUGENE_REQUIRE(!dataset.empty(), "evaluate_staged: empty dataset");
  StagedEvaluation eval;
  eval.records.resize(model.num_stages());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto outputs = model.forward_all(dataset.samples[i], /*training=*/false);
    for (std::size_t s = 0; s < outputs.size(); ++s) {
      StageRecord r;
      r.predicted = outputs[s].predicted_label;
      r.truth = dataset.labels[i];
      r.confidence = outputs[s].confidence;
      r.probs = outputs[s].probs;
      eval.records[s].push_back(std::move(r));
    }
  }
  return eval;
}

StagedEvaluation evaluate_staged_mc(nn::StagedModel& model, const data::Dataset& dataset,
                                    std::size_t mc_samples) {
  EUGENE_REQUIRE(!dataset.empty(), "evaluate_staged_mc: empty dataset");
  StagedEvaluation eval;
  eval.records.resize(model.num_stages());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Tensor* current = &dataset.samples[i];
    nn::StageOutput out;
    for (std::size_t s = 0; s < model.num_stages(); ++s) {
      out = model.run_stage_mc(s, *current, mc_samples);
      StageRecord r;
      r.predicted = out.predicted_label;
      r.truth = dataset.labels[i];
      r.confidence = out.confidence;
      r.probs = out.probs;
      eval.records[s].push_back(std::move(r));
      current = &out.features;
    }
  }
  return eval;
}

double stage_accuracy(const StagedEvaluation& eval, std::size_t stage) {
  return overall_accuracy(eval.predicted(stage), eval.truth(stage));
}

}  // namespace eugene::calib
