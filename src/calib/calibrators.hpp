// Confidence calibrators.
//
// RTDeepIoT (the paper's method, Eq. 4): fine-tune the softmax heads with
// L = CE + α·H(p), picking α by grid search with the paper's sign rule as
// the starting intuition (α < 0 when confidence underestimates accuracy).
//
// Temperature scaling (Guo et al., cited as [11]) is included as an
// ablation extra: per-stage temperature fitted by NLL minimization.
#pragma once

#include <vector>

#include "calib/evaluation.hpp"

namespace eugene::calib {

/// Fine-tunes one stage head on cached features with the Eq. 4 loss.
/// Trunk weights are frozen.
void finetune_head(nn::StagedModel& model, std::size_t stage,
                   const std::vector<tensor::Tensor>& features,
                   std::span<const std::size_t> labels, double alpha,
                   std::size_t epochs = 200, double learning_rate = 0.1,
                   std::size_t batch_size = 32);

/// Fine-tunes every stage head on the calibration set with the Eq. 4 loss.
/// Features are computed once and cached, so this is cheap even for many
/// epochs.
void finetune_heads(nn::StagedModel& model, const data::Dataset& calib_set,
                    double alpha, std::size_t epochs = 200, double learning_rate = 0.1,
                    std::size_t batch_size = 32);

/// Grid-search configuration for entropy calibration.
struct EntropyCalibConfig {
  /// Asymmetric on the sharpening side: the thin GAP+Dense heads start out
  /// strongly underconfident and need large positive α to recover. Values
  /// much above ~2 make the entropy term dominate CE (degenerate one-class
  /// heads); the ECE-based selection rejects them if they slip through.
  std::vector<double> alpha_grid = {-1.0, -0.6, -0.35, -0.2, -0.1, 0.0, 0.1,
                                    0.2, 0.35, 0.6, 1.0, 1.75};
  /// Head fine-tuning needs a real optimization budget: confidence recovery
  /// requires logit magnitudes to grow, which plain SGD does slowly.
  std::size_t epochs = 200;
  double learning_rate = 0.1;
  std::size_t batch_size = 32;
  std::size_t ece_bins = 10;
};

/// Calibrates the model head by head: for every stage, tries each α
/// (fine-tuning that head from its pre-calibration weights each time, on
/// the first 70% of `calib_set`) and keeps the α giving the lowest stage
/// ECE on the held-out 30%. The untouched head is also a candidate, so
/// calibration never loses to doing nothing on the validation split. Each
/// head may pick a different α — early heads often underestimate while
/// late heads overestimate. Returns the chosen α per stage (0 both for
/// "α=0 won" and "no fine-tune won").
std::vector<double> calibrate_heads_entropy(nn::StagedModel& model,
                                            const data::Dataset& calib_set,
                                            const EntropyCalibConfig& config = {});

/// Fits one temperature per stage by minimizing NLL on the calibration set
/// (golden-section search over T ∈ [0.05, 10]).
std::vector<double> fit_temperatures(nn::StagedModel& model, const data::Dataset& calib_set);

/// Evaluates the model with per-stage temperature-scaled probabilities.
StagedEvaluation evaluate_with_temperature(nn::StagedModel& model,
                                           const data::Dataset& dataset,
                                           const std::vector<double>& temperatures);

/// Trunk outputs per stage for every sample: features[stage][sample] is the
/// input that stage's head sees. Shared by the fine-tuners above.
std::vector<std::vector<tensor::Tensor>> stage_features(nn::StagedModel& model,
                                                        const data::Dataset& dataset);

}  // namespace eugene::calib
