#include "calib/calibrators.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "calib/ece.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace eugene::calib {

using tensor::Tensor;

std::vector<std::vector<Tensor>> stage_features(nn::StagedModel& model,
                                                const data::Dataset& dataset) {
  EUGENE_REQUIRE(!dataset.empty(), "stage_features: empty dataset");
  std::vector<std::vector<Tensor>> features(model.num_stages());
  for (auto& f : features) f.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Tensor* current = &dataset.samples[i];
    for (std::size_t s = 0; s < model.num_stages(); ++s) {
      features[s].push_back(model.trunk_forward(s, *current, /*training=*/false));
      current = &features[s].back();
    }
  }
  return features;
}

void finetune_head(nn::StagedModel& model, std::size_t stage,
                   const std::vector<Tensor>& features,
                   std::span<const std::size_t> labels, double alpha,
                   std::size_t epochs, double learning_rate, std::size_t batch_size) {
  EUGENE_REQUIRE(batch_size > 0, "finetune_head: batch size must be positive");
  EUGENE_REQUIRE(features.size() == labels.size(), "finetune_head: size mismatch");
  EUGENE_REQUIRE(!features.empty(), "finetune_head: empty calibration set");
  nn::SgdConfig sgd;
  sgd.learning_rate = learning_rate;
  sgd.momentum = 0.9;
  sgd.weight_decay = 0.0;  // calibration should not shrink the head
  nn::SgdOptimizer optimizer(model.head_params(stage), sgd);
  Rng shuffle_rng(13 + stage);
  std::vector<std::size_t> order(features.size());
  for (std::size_t e = 0; e < epochs; ++e) {
    std::iota(order.begin(), order.end(), 0);
    shuffle_rng.shuffle(order);
    std::size_t in_batch = 0;
    optimizer.zero_grads();
    for (std::size_t idx : order) {
      const Tensor logits = model.head_forward(stage, features[idx], /*training=*/true);
      const nn::LossResult loss =
          nn::cross_entropy_with_entropy_reg(logits, labels[idx], alpha);
      model.head_backward(stage, loss.grad_logits);
      if (++in_batch == batch_size) {
        optimizer.step(1.0 / static_cast<double>(in_batch));
        optimizer.zero_grads();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.step(1.0 / static_cast<double>(in_batch));
      optimizer.zero_grads();
    }
  }
}

void finetune_heads(nn::StagedModel& model, const data::Dataset& calib_set, double alpha,
                    std::size_t epochs, double learning_rate, std::size_t batch_size) {
  const auto features = stage_features(model, calib_set);
  for (std::size_t s = 0; s < model.num_stages(); ++s)
    finetune_head(model, s, features[s], calib_set.labels, alpha, epochs, learning_rate,
                  batch_size);
}

namespace {

/// ECE of one stage's head evaluated on cached features.
double head_ece(nn::StagedModel& model, std::size_t stage,
                const std::vector<Tensor>& features,
                std::span<const std::size_t> labels, std::size_t bins) {
  std::vector<std::size_t> predicted(features.size());
  std::vector<std::size_t> truth(labels.begin(), labels.end());
  std::vector<float> confidence(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    const Tensor logits = model.head_forward(stage, features[i], /*training=*/false);
    const std::vector<float> probs = softmax(logits.data());
    predicted[i] = argmax(probs);
    confidence[i] = probs[predicted[i]];
  }
  return expected_calibration_error(predicted, truth, confidence, bins);
}

}  // namespace

std::vector<double> calibrate_heads_entropy(nn::StagedModel& model,
                                            const data::Dataset& calib_set,
                                            const EntropyCalibConfig& config) {
  EUGENE_REQUIRE(!config.alpha_grid.empty(), "calibrate_heads_entropy: empty alpha grid");
  EUGENE_REQUIRE(calib_set.size() >= 10, "calibrate_heads_entropy: calibration set too small");
  const auto features = stage_features(model, calib_set);

  // Hold out part of the calibration set for α selection: the heads
  // fine-tune hard enough on the fit split that in-sample ECE stops
  // predicting held-out ECE.
  const std::size_t fit_count = calib_set.size() * 7 / 10;
  std::vector<std::size_t> fit_labels(calib_set.labels.begin(),
                                      calib_set.labels.begin() + fit_count);
  std::vector<std::size_t> val_labels(calib_set.labels.begin() + fit_count,
                                      calib_set.labels.end());

  std::vector<double> chosen(model.num_stages(), 0.0);
  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    const std::vector<Tensor> fit_features(features[s].begin(),
                                           features[s].begin() + fit_count);
    const std::vector<Tensor> val_features(features[s].begin() + fit_count,
                                           features[s].end());
    const auto head = model.head_params(s);
    // Snapshot the pre-calibration weights so every α starts equal; the
    // untouched head is itself a candidate (fine-tuning must earn its keep).
    std::stringstream initial;
    nn::save_params(head, initial);

    double best_alpha = 0.0;
    double best_ece = head_ece(model, s, val_features, val_labels, config.ece_bins);
    std::stringstream best_weights;
    nn::save_params(head, best_weights);
    for (double alpha : config.alpha_grid) {
      initial.clear();
      initial.seekg(0);
      nn::load_params(head, initial);
      finetune_head(model, s, fit_features, fit_labels, alpha, config.epochs,
                    config.learning_rate, config.batch_size);
      const double ece = head_ece(model, s, val_features, val_labels, config.ece_bins);
      EUGENE_LOG(Debug) << "stage " << s << " alpha=" << alpha << " val ece=" << ece;
      if (ece < best_ece) {
        best_ece = ece;
        best_alpha = alpha;
        best_weights.str({});
        best_weights.clear();
        nn::save_params(head, best_weights);
      }
    }
    best_weights.clear();
    best_weights.seekg(0);
    nn::load_params(head, best_weights);
    chosen[s] = best_alpha;
    EUGENE_LOG(Info) << "stage " << s << " calibration picked alpha=" << best_alpha
                     << " (held-out ECE " << best_ece << ")";
  }
  return chosen;
}

namespace {

/// Negative log-likelihood of temperature-scaled logits.
double nll_at_temperature(const std::vector<Tensor>& logits,
                          const std::vector<std::size_t>& labels, double temperature) {
  double nll = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor scaled = logits[i];
    scaled *= static_cast<float>(1.0 / temperature);
    const std::vector<float> p = softmax(scaled.data());
    nll -= std::log(static_cast<double>(p[labels[i]]) + 1e-12);
  }
  return nll;
}

}  // namespace

std::vector<double> fit_temperatures(nn::StagedModel& model,
                                     const data::Dataset& calib_set) {
  const auto features = stage_features(model, calib_set);
  std::vector<double> temps(model.num_stages(), 1.0);
  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    std::vector<Tensor> logits;
    logits.reserve(calib_set.size());
    for (std::size_t i = 0; i < calib_set.size(); ++i)
      logits.push_back(model.head_forward(s, features[s][i], /*training=*/false));

    // Golden-section search on log-temperature.
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double lo = std::log(0.05), hi = std::log(10.0);
    double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
    double f1 = nll_at_temperature(logits, calib_set.labels, std::exp(x1));
    double f2 = nll_at_temperature(logits, calib_set.labels, std::exp(x2));
    for (int iter = 0; iter < 50; ++iter) {
      if (f1 < f2) {
        hi = x2;
        x2 = x1;
        f2 = f1;
        x1 = hi - phi * (hi - lo);
        f1 = nll_at_temperature(logits, calib_set.labels, std::exp(x1));
      } else {
        lo = x1;
        x1 = x2;
        f1 = f2;
        x2 = lo + phi * (hi - lo);
        f2 = nll_at_temperature(logits, calib_set.labels, std::exp(x2));
      }
    }
    temps[s] = std::exp((lo + hi) / 2.0);
  }
  return temps;
}

StagedEvaluation evaluate_with_temperature(nn::StagedModel& model,
                                           const data::Dataset& dataset,
                                           const std::vector<double>& temperatures) {
  EUGENE_REQUIRE(temperatures.size() == model.num_stages(),
                 "evaluate_with_temperature: one temperature per stage required");
  const auto features = stage_features(model, dataset);
  StagedEvaluation eval;
  eval.records.resize(model.num_stages());
  for (std::size_t s = 0; s < model.num_stages(); ++s) {
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      Tensor logits = model.head_forward(s, features[s][i], /*training=*/false);
      logits *= static_cast<float>(1.0 / temperatures[s]);
      StageRecord r;
      r.probs = softmax(logits.data());
      r.predicted = argmax(r.probs);
      r.confidence = r.probs[r.predicted];
      r.truth = dataset.labels[i];
      eval.records[s].push_back(std::move(r));
    }
  }
  return eval;
}

}  // namespace eugene::calib
