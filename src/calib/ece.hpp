// Calibration metrics: reliability diagrams (paper Fig. 2) and Expected
// Calibration Error (paper Eqs. 1–3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eugene::calib {

/// One confidence bin of a reliability diagram.
struct ReliabilityBin {
  double lower = 0.0;       ///< bin interval (lower, upper]
  double upper = 0.0;
  std::size_t count = 0;    ///< |S_m|
  double accuracy = 0.0;    ///< acc(S_m), Eq. 1
  double confidence = 0.0;  ///< conf(S_m), Eq. 2
};

/// Bins samples by confidence into `num_bins` equal-width intervals and
/// computes per-bin accuracy and mean confidence.
std::vector<ReliabilityBin> reliability_diagram(std::span<const std::size_t> predicted,
                                                std::span<const std::size_t> truth,
                                                std::span<const float> confidence,
                                                std::size_t num_bins = 10);

/// Expected Calibration Error, Eq. 3: the |S_m|/N-weighted mean of
/// |acc(S_m) − conf(S_m)| over bins.
double expected_calibration_error(std::span<const std::size_t> predicted,
                                  std::span<const std::size_t> truth,
                                  std::span<const float> confidence,
                                  std::size_t num_bins = 10);

/// acc(S): overall fraction correct.
double overall_accuracy(std::span<const std::size_t> predicted,
                        std::span<const std::size_t> truth);

/// conf(S): overall mean confidence.
double overall_confidence(std::span<const float> confidence);

/// Paper's sign rule for Eq. 4: returns a negative α when the model
/// underestimates (conf < acc) and a positive α when it overestimates.
double suggest_alpha_sign(double accuracy, double confidence, double magnitude = 0.1);

}  // namespace eugene::calib
