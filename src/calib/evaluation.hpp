// Per-stage evaluation tables: the bridge from trained staged models to the
// calibration metrics, the GP confidence-curve fits, and the scheduling
// experiments. Every Eugene experiment first materializes one of these.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/staged_model.hpp"

namespace eugene::calib {

/// One (sample, stage) observation.
struct StageRecord {
  std::size_t predicted = 0;
  std::size_t truth = 0;
  float confidence = 0.0f;
  std::vector<float> probs;  ///< full softmax distribution
};

/// Evaluation of a staged model over a dataset: records[stage][sample].
struct StagedEvaluation {
  std::vector<std::vector<StageRecord>> records;

  std::size_t num_stages() const { return records.size(); }
  std::size_t num_samples() const { return records.empty() ? 0 : records[0].size(); }

  /// Column extractors for the metric functions.
  std::vector<std::size_t> predicted(std::size_t stage) const;
  std::vector<std::size_t> truth(std::size_t stage) const;
  std::vector<float> confidence(std::size_t stage) const;

  /// True iff the stage-`stage` prediction of sample `i` is correct.
  bool correct(std::size_t stage, std::size_t i) const {
    return records[stage][i].predicted == records[stage][i].truth;
  }
};

/// Runs every sample through all stages deterministically.
StagedEvaluation evaluate_staged(nn::StagedModel& model, const data::Dataset& dataset);

/// Same but with RDeepSense-style MC-dropout heads (`mc_samples` forward
/// passes per head, probabilities averaged). The model must have been built
/// with head_dropout > 0 for this to differ from evaluate_staged.
StagedEvaluation evaluate_staged_mc(nn::StagedModel& model, const data::Dataset& dataset,
                                    std::size_t mc_samples);

/// Accuracy at one stage.
double stage_accuracy(const StagedEvaluation& eval, std::size_t stage);

}  // namespace eugene::calib
