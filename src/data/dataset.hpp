// Dataset containers shared by the synthetic generators and every consumer
// (training, calibration, scheduling experiments).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace eugene::data {

/// A labeled dataset of tensors (images or feature vectors).
/// `difficulty` is the generator's ground-truth hardness knob per sample
/// (0 = prototypical, 1 = maximally corrupted); kept for analysis, never
/// shown to models.
struct Dataset {
  std::vector<tensor::Tensor> samples;
  std::vector<std::size_t> labels;
  std::vector<double> difficulty;

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }

  void push(tensor::Tensor sample, std::size_t label, double diff) {
    samples.push_back(std::move(sample));
    labels.push_back(label);
    difficulty.push_back(diff);
  }

  /// Appends all of `other`.
  void append(const Dataset& other) {
    samples.insert(samples.end(), other.samples.begin(), other.samples.end());
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
    difficulty.insert(difficulty.end(), other.difficulty.begin(), other.difficulty.end());
  }
};

/// Splits a dataset at `first_count` samples: [0, first_count) and the rest.
inline std::pair<Dataset, Dataset> split(const Dataset& d, std::size_t first_count) {
  EUGENE_REQUIRE(first_count <= d.size(), "split: first_count exceeds dataset size");
  Dataset a, b;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i < first_count)
      a.push(d.samples[i], d.labels[i], d.difficulty[i]);
    else
      b.push(d.samples[i], d.labels[i], d.difficulty[i]);
  }
  return {std::move(a), std::move(b)};
}

/// Returns the subset whose labels appear in `keep` (used by the caching
/// service to retrain on the frequent-class subset, paper §II-B).
inline Dataset filter_labels(const Dataset& d, const std::vector<std::size_t>& keep) {
  Dataset out;
  for (std::size_t i = 0; i < d.size(); ++i)
    for (std::size_t k : keep)
      if (d.labels[i] == k) {
        out.push(d.samples[i], d.labels[i], d.difficulty[i]);
        break;
      }
  return out;
}

}  // namespace eugene::data
