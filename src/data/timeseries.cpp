#include "data/timeseries.hpp"

#include <cmath>

namespace eugene::data {

using tensor::Tensor;

Tensor series_prototype(const TimeSeriesConfig& config, std::size_t label) {
  EUGENE_REQUIRE(label < config.num_classes, "series_prototype: label out of range");
  Rng rng(config.prototype_seed * 40503u + label * 9176u + 1u);
  Tensor out({config.channels, config.length});
  for (std::size_t c = 0; c < config.channels; ++c) {
    const double freq = rng.uniform(1.0, 6.0);
    const double amp = rng.uniform(0.5, 1.2);
    const double phase = rng.uniform(0.0, 6.28318);
    const double harmonic = rng.uniform(0.1, 0.5);
    for (std::size_t t = 0; t < config.length; ++t) {
      const double x = static_cast<double>(t) / static_cast<double>(config.length);
      out.at(c, t) = static_cast<float>(amp * std::sin(2.0 * 3.14159265 * freq * x + phase) +
                                        harmonic * std::sin(4.0 * 3.14159265 * freq * x));
    }
  }
  return out;
}

Tensor sample_series(const TimeSeriesConfig& config, std::size_t label, double difficulty,
                     Rng& rng) {
  EUGENE_REQUIRE(difficulty >= 0.0 && difficulty <= 1.0,
                 "sample_series: difficulty outside [0,1]");
  const Tensor proto = series_prototype(config, label);
  Tensor out(proto.shape());
  const double noise = config.noise_stddev * (0.4 + 1.6 * difficulty);
  const double drift_amp = 0.3 * difficulty;
  const double drift_phase = rng.uniform(0.0, 6.28318);
  const float* p = proto.raw();
  float* o = out.raw();
  for (std::size_t c = 0; c < config.channels; ++c) {
    for (std::size_t t = 0; t < config.length; ++t) {
      const double x = static_cast<double>(t) / static_cast<double>(config.length);
      const double drift = drift_amp * std::sin(2.0 * 3.14159265 * x + drift_phase);
      const std::size_t i = c * config.length + t;
      o[i] = static_cast<float>(p[i] + drift + rng.normal(0.0, noise));
    }
  }
  return out;
}

Dataset generate_series(const TimeSeriesConfig& config, std::size_t count, Rng& rng) {
  Dataset out;
  out.samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(config.num_classes) - 1));
    const double difficulty = std::pow(rng.uniform(0.0, 1.0), config.difficulty_skew);
    out.push(sample_series(config, label, difficulty, rng), label, difficulty);
  }
  return out;
}

}  // namespace eugene::data
