// Procedural 10-class image generator — the CIFAR-10 stand-in (DESIGN.md §2).
//
// Each class has a deterministic prototype (class-specific gratings plus a
// positioned blob). A sample mixes its class prototype with a distractor
// class's prototype and Gaussian noise, weighted by a per-sample *difficulty*
// drawn from a configurable distribution:
//
//   x = (1 − d)·proto[y] + d·mix·proto[y'] + σ(d)·noise
//
// Low-difficulty samples are confidently classifiable by a shallow stage;
// high-difficulty samples need the full network — exactly the property the
// paper's staged scheduler exploits.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace eugene::data {

/// Generator parameters.
struct SyntheticImageConfig {
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  /// Base Gaussian noise stddev; actual noise grows with difficulty.
  double noise_stddev = 0.25;
  /// Fraction of distractor-class signal blended in at difficulty 1.
  double distractor_strength = 0.55;
  /// Beta-like shape of the difficulty distribution: 1 = uniform; >1 skews
  /// easy-heavy (d = u^difficulty_skew for u ~ U[0,1]).
  double difficulty_skew = 1.3;
  /// Seed for the class prototypes (not the per-sample draws).
  std::uint64_t prototype_seed = 2024;
};

/// Deterministic prototype image of one class.
tensor::Tensor class_prototype(const SyntheticImageConfig& config, std::size_t label);

/// Draws one sample of class `label` with the given difficulty in [0, 1].
tensor::Tensor sample_image(const SyntheticImageConfig& config, std::size_t label,
                            double difficulty, Rng& rng);

/// Generates `count` samples with labels uniform over classes and difficulty
/// from the configured distribution.
Dataset generate_images(const SyntheticImageConfig& config, std::size_t count, Rng& rng);

/// Generates samples whose labels follow `class_weights` (used by the
/// caching experiments where a few classes dominate, paper §II-B).
Dataset generate_images_weighted(const SyntheticImageConfig& config, std::size_t count,
                                 const std::vector<double>& class_weights, Rng& rng);

}  // namespace eugene::data
