#include "data/synthetic_images.hpp"

#include <cmath>

namespace eugene::data {

using tensor::Tensor;

Tensor class_prototype(const SyntheticImageConfig& config, std::size_t label) {
  EUGENE_REQUIRE(label < config.num_classes, "class_prototype: label out of range");
  // All prototype parameters derive deterministically from (seed, label) so
  // independently generated train/test sets share the same class structure.
  Rng rng(config.prototype_seed * 1315423911u + label * 2654435761u);
  const double fx = rng.uniform(0.5, 2.5);
  const double fy = rng.uniform(0.5, 2.5);
  const double phase = rng.uniform(0.0, 6.28318);
  const double blob_cx = rng.uniform(0.2, 0.8) * static_cast<double>(config.width);
  const double blob_cy = rng.uniform(0.2, 0.8) * static_cast<double>(config.height);
  const double blob_r = rng.uniform(0.15, 0.3) *
                        static_cast<double>(std::min(config.width, config.height));

  Tensor img({config.channels, config.height, config.width});
  for (std::size_t c = 0; c < config.channels; ++c) {
    // Per-channel orientation shift keeps channels informative but distinct.
    const double channel_phase = phase + static_cast<double>(c) * 2.0943951;  // 2π/3
    const double gain = rng.uniform(0.6, 1.0);
    for (std::size_t y = 0; y < config.height; ++y) {
      for (std::size_t x = 0; x < config.width; ++x) {
        const double grating =
            std::sin(fx * static_cast<double>(x) * 0.7 + channel_phase) *
            std::cos(fy * static_cast<double>(y) * 0.7 - channel_phase);
        const double dx = static_cast<double>(x) - blob_cx;
        const double dy = static_cast<double>(y) - blob_cy;
        const double blob = std::exp(-(dx * dx + dy * dy) / (2.0 * blob_r * blob_r));
        img.at(c, y, x) = static_cast<float>(gain * (0.6 * grating + 0.8 * blob));
      }
    }
  }
  return img;
}

Tensor sample_image(const SyntheticImageConfig& config, std::size_t label,
                    double difficulty, Rng& rng) {
  EUGENE_REQUIRE(difficulty >= 0.0 && difficulty <= 1.0,
                 "sample_image: difficulty outside [0,1]");
  const Tensor proto = class_prototype(config, label);
  // Distractor: a different class, so hard samples sit near decision
  // boundaries rather than just being noisy.
  std::size_t distractor = label;
  if (config.num_classes > 1) {
    distractor = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(config.num_classes) - 2));
    if (distractor >= label) ++distractor;
  }
  const Tensor other = class_prototype(config, distractor);

  const double mix = config.distractor_strength * difficulty;
  const double noise = config.noise_stddev * (0.4 + 1.6 * difficulty);
  Tensor img(proto.shape());
  const float* p = proto.raw();
  const float* o = other.raw();
  float* out = img.raw();
  for (std::size_t i = 0; i < img.numel(); ++i) {
    out[i] = static_cast<float>((1.0 - mix) * p[i] + mix * o[i] + rng.normal(0.0, noise));
  }
  return img;
}

Dataset generate_images(const SyntheticImageConfig& config, std::size_t count, Rng& rng) {
  std::vector<double> uniform(config.num_classes, 1.0);
  return generate_images_weighted(config, count, uniform, rng);
}

Dataset generate_images_weighted(const SyntheticImageConfig& config, std::size_t count,
                                 const std::vector<double>& class_weights, Rng& rng) {
  EUGENE_REQUIRE(class_weights.size() == config.num_classes,
                 "generate_images_weighted: weights size mismatch");
  Dataset out;
  out.samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = rng.categorical(class_weights);
    const double u = rng.uniform(0.0, 1.0);
    const double difficulty = std::pow(u, config.difficulty_skew);
    out.push(sample_image(config, label, difficulty, rng), label, difficulty);
  }
  return out;
}

}  // namespace eugene::data
