// Multichannel time-series generator — the DeepSense-style sensor-fusion
// workload (paper §II-A). Each class is a distinct multi-sensor signature
// (per-channel frequency/amplitude/phase template); samples add drift and
// noise proportional to difficulty.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace eugene::data {

/// Generator parameters for sensor time series.
struct TimeSeriesConfig {
  std::size_t num_classes = 6;
  std::size_t channels = 4;   ///< e.g. 3-axis accelerometer + 1 gyro magnitude
  std::size_t length = 64;    ///< samples per window
  double noise_stddev = 0.2;
  double difficulty_skew = 1.3;
  std::uint64_t prototype_seed = 77;
};

/// Deterministic per-class multichannel template of shape [channels, length].
tensor::Tensor series_prototype(const TimeSeriesConfig& config, std::size_t label);

/// One sample of class `label` at the given difficulty.
tensor::Tensor sample_series(const TimeSeriesConfig& config, std::size_t label,
                             double difficulty, Rng& rng);

/// Generates `count` labeled windows with uniform class balance.
Dataset generate_series(const TimeSeriesConfig& config, std::size_t count, Rng& rng);

}  // namespace eugene::data
