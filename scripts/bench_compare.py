#!/usr/bin/env python3
"""Benchmark regression guard: compares a freshly produced bench_snapshot.py
JSON against the committed baseline and calls out p50 drifts.

By design this is a *tripwire, not a gate*: microbenchmark numbers on shared
CI runners are noisy, so a regression prints a loud ::warning (GitHub
annotation syntax) and the job stays green. A human decides whether the drift
is real — pass --fail to make regressions fatal when running on quiet
hardware.

Usage:
    scripts/bench_compare.py --current fresh.json [--baseline BENCH_X.json]
                             [--threshold 0.25] [--fail]

Defaults: baseline is the lexicographically newest BENCH_*.json in the repo
root (the date-stamped naming makes newest == latest); threshold 0.25 means
"warn when p50 grew by more than 25%". Benchmarks present on only one side
are listed informationally — a renamed benchmark should ship with a refreshed
baseline in the same PR.

Both files must be schema-1 bench_snapshot.py output (all times already
normalized to nanoseconds).

Exit status: 0 (even with regressions, unless --fail), 1 regressions with
--fail or schema mismatch, 2 bad usage.

stdlib-only on purpose: this must run in CI and in bare containers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_snapshot(path: Path) -> dict:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_compare: cannot read {path}: {exc}")
    if data.get("schema") != 1:
        raise SystemExit(
            f"bench_compare: {path} has schema {data.get('schema')!r}, "
            "expected 1 (regenerate with scripts/bench_snapshot.py)")
    return data


def newest_baseline(repo_root: Path) -> Path:
    candidates = sorted(repo_root.glob("BENCH_*.json"))
    if not candidates:
        raise SystemExit(
            "bench_compare: no BENCH_*.json baseline in the repo root "
            "(commit one with scripts/bench_snapshot.py)")
    return candidates[-1]


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", type=Path, required=True,
                    help="fresh snapshot JSON from scripts/bench_snapshot.py")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="committed baseline (default: newest BENCH_*.json "
                         "in the repo root)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="p50 growth ratio that counts as a regression "
                         "(default 0.25 = +25%%)")
    ap.add_argument("--fail", action="store_true",
                    help="exit 1 on regressions instead of warning")
    args = ap.parse_args()
    if args.threshold <= 0:
        ap.error("--threshold must be positive")

    baseline_path = args.baseline or newest_baseline(repo_root)
    baseline = load_snapshot(baseline_path)
    current = load_snapshot(args.current)
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})

    regressions, improvements, steady = [], [], []
    for name in sorted(set(base_benches) & set(cur_benches)):
        base_p50 = base_benches[name]["p50_ns"]
        cur_p50 = cur_benches[name]["p50_ns"]
        if base_p50 <= 0:
            continue
        ratio = cur_p50 / base_p50 - 1.0
        row = (name, base_p50, cur_p50, ratio)
        if ratio > args.threshold:
            regressions.append(row)
        elif ratio < -args.threshold:
            improvements.append(row)
        else:
            steady.append(row)

    only_base = sorted(set(base_benches) - set(cur_benches))
    only_cur = sorted(set(cur_benches) - set(base_benches))

    print(f"bench_compare: {baseline_path.name} (baseline, "
          f"{baseline.get('date', '?')}) vs {args.current.name}: "
          f"{len(steady)} steady, {len(improvements)} improved, "
          f"{len(regressions)} regressed "
          f"(threshold ±{args.threshold:.0%} on p50)")
    for name, base_p50, cur_p50, ratio in regressions:
        # ::warning makes GitHub surface the line as a job annotation.
        print(f"::warning title=bench p50 regression::{name}: "
              f"{fmt_ns(base_p50)} -> {fmt_ns(cur_p50)} ({ratio:+.0%})")
    for name, base_p50, cur_p50, ratio in improvements:
        print(f"  improved: {name}: {fmt_ns(base_p50)} -> {fmt_ns(cur_p50)} "
              f"({ratio:+.0%})")
    if only_cur:
        print(f"  new (no baseline, refresh BENCH_*.json): "
              f"{', '.join(only_cur)}")
    if only_base:
        print(f"  missing from current run (renamed/deleted?): "
              f"{', '.join(only_base)}")

    if regressions and args.fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
