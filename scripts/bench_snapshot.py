#!/usr/bin/env python3
"""Benchmark snapshotter: runs the google-benchmark micro suite and distills
its output into a small, diffable JSON file — one entry per benchmark with
nearest-rank p50/p99 over the repetitions — so perf regressions show up as a
reviewable artifact rather than scrollback.

Usage:
    scripts/bench_snapshot.py [--bench PATH] [--out PATH]
                              [--filter REGEX] [--repetitions N]

Defaults: runs ./build/bench/bench_micro with 5 repetitions and writes
BENCH_<YYYY-MM-DD>.json in the repo root. `--filter` is passed through as
--benchmark_filter to run a subset (e.g. --filter 'BM_Histogram.*').

Output schema (version 1):
    {
      "schema": 1,
      "date": "2026-08-08",
      "repetitions": 5,
      "benchmarks": {
        "<name>": {"p50_ns": float, "p99_ns": float, "mean_ns": float,
                   "time_unit_reported": "ns", "samples": int}
      }
    }
All times are normalized to nanoseconds regardless of each benchmark's
reported unit, so entries compare across the suite.

stdlib-only on purpose: this must run in CI and in bare containers.
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import subprocess
import sys
from collections import defaultdict
from pathlib import Path

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def nearest_rank(sorted_xs: list[float], q: float) -> float:
    """Nearest-rank quantile (ceil semantics), matching the C++
    LatencyHistogram contract: rank = clamp(ceil(q*N), 1, N), 1-based."""
    n = len(sorted_xs)
    rank = min(max(math.ceil(q * n), 1), n)
    return sorted_xs[rank - 1]


def run_benchmarks(bench: Path, filter_re: str | None,
                   repetitions: int) -> dict:
    cmd = [
        str(bench),
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=false",
    ]
    if filter_re:
        cmd.append(f"--benchmark_filter={filter_re}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"bench_snapshot: {bench} exited {proc.returncode}")
    return json.loads(proc.stdout)


def distill(report: dict) -> dict:
    """Group repetition rows by benchmark name and reduce to percentiles."""
    samples_ns: dict[str, list[float]] = defaultdict(list)
    units: dict[str, str] = {}
    for row in report.get("benchmarks", []):
        # Skip the aggregate rows google-benchmark appends (mean/median/
        # stddev/cv); raw repetition rows have run_type "iteration".
        if row.get("run_type") != "iteration":
            continue
        name = row.get("run_name", row["name"])
        unit = row.get("time_unit", "ns")
        samples_ns[name].append(row["real_time"] * TIME_UNIT_NS[unit])
        units[name] = unit

    out = {}
    for name in sorted(samples_ns):
        xs = sorted(samples_ns[name])
        out[name] = {
            "p50_ns": nearest_rank(xs, 0.50),
            "p99_ns": nearest_rank(xs, 0.99),
            "mean_ns": sum(xs) / len(xs),
            "time_unit_reported": units[name],
            "samples": len(xs),
        }
    return out


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", type=Path,
                    default=repo_root / "build" / "bench" / "bench_micro")
    ap.add_argument("--out", type=Path, default=None,
                    help="output path (default: BENCH_<date>.json in repo root)")
    ap.add_argument("--filter", default=None,
                    help="--benchmark_filter regex passed to the suite")
    ap.add_argument("--repetitions", type=int, default=5)
    args = ap.parse_args()

    if not args.bench.exists():
        raise SystemExit(f"bench_snapshot: {args.bench} not built "
                         "(cmake --build build --target bench_micro)")

    date = datetime.date.today().isoformat()
    out_path = args.out or repo_root / f"BENCH_{date}.json"
    report = run_benchmarks(args.bench, args.filter, args.repetitions)
    snapshot = {
        "schema": 1,
        "date": date,
        "repetitions": args.repetitions,
        "benchmarks": distill(report),
    }
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    print(f"bench_snapshot: {len(snapshot['benchmarks'])} benchmarks -> "
          f"{out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
