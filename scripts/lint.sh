#!/usr/bin/env bash
# Repo lint: format check + clang-tidy + grep-based ban list.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir  a configured build tree with compile_commands.json
#              (default: build; only needed for the clang-tidy step)
#
# clang-format and clang-tidy steps are skipped with a warning when the tools
# are not installed (the grep ban list always runs), so the script is useful
# both in CI (full toolchain) and in minimal containers.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
cd "$repo_root"

failures=0

note() { printf '== %s\n' "$*"; }
fail() {
  printf 'LINT FAIL: %s\n' "$*" >&2
  failures=$((failures + 1))
}

cxx_sources() {
  find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort
}

# ---------------------------------------------------------------------------
note "format check (.clang-format)"
if command -v clang-format > /dev/null 2>&1; then
  unformatted=$(cxx_sources | xargs clang-format --dry-run -Werror 2>&1 | head -40)
  if [ -n "$unformatted" ]; then
    printf '%s\n' "$unformatted"
    fail "clang-format found unformatted files (run: clang-format -i \$(git ls-files '*.cpp' '*.hpp'))"
  fi
else
  note "clang-format not installed; skipping format check"
fi

# ---------------------------------------------------------------------------
note "clang-tidy (.clang-tidy)"
if command -v clang-tidy > /dev/null 2>&1; then
  if [ -f "$build_dir/compile_commands.json" ]; then
    if ! find src -name '*.cpp' | sort | xargs clang-tidy -p "$build_dir" --quiet; then
      fail "clang-tidy reported findings on src/"
    fi
  else
    fail "no compile_commands.json in $build_dir (configure with cmake first)"
  fi
else
  note "clang-tidy not installed; skipping static analysis"
fi

# ---------------------------------------------------------------------------
note "grep ban list"

# Headers must not pollute every includer's namespace.
if grep -rn --include='*.hpp' 'using namespace std' src; then
  fail "'using namespace std' in a header"
fi

# Ownership goes through containers and smart pointers, never naked new.
if grep -rnE --include='*.cpp' --include='*.hpp' '(^|[^_[:alnum:]"])new +[[:alnum:]_:<]' src \
  | grep -vE ':[0-9]+:[[:space:]]*(//|\*|/\*)' \
  | grep -v 'make_unique\|make_shared\|// *NOLINT-new'; then
  fail "naked 'new' in src/ (use std::make_unique; annotate intentional uses with // NOLINT-new)"
fi

# Everything thrown from src/ must derive from eugene::Error so the fault
# paths (worker supervision, stage retry, transport recovery) can catch one
# taxonomy (DESIGN.md §8). Bare `throw;` rethrows are fine.
if grep -rnE --include='*.cpp' --include='*.hpp' '(^|[^_[:alnum:]])throw[[:space:]]' src \
  | grep -v '^src/common/error.hpp' \
  | sed 's%//.*%%' \
  | grep -E '(^|[^_[:alnum:]])throw +[[:alnum:]_:]' \
  | grep -vE 'throw +(::)?(eugene::)?(Error|InvalidArgument|InternalError|TransportError|FailpointError|CorruptionError|IoError)[({]'; then
  fail "throw of a non-eugene::Error type in src/ (use the taxonomy in common/error.hpp)"
fi

# The library logs through EUGENE_LOG; stdout belongs to examples and benches.
if grep -rn --include='*.cpp' --include='*.hpp' 'std::cout' src; then
  fail "std::cout in src/ (use EUGENE_LOG from common/logging.hpp)"
fi

# Raw std::mutex in src/ bypasses the annotated wrapper the thread-safety
# analysis depends on (common/thread_annotations.hpp is the one place a raw
# std::mutex may live).
if grep -rn --include='*.cpp' --include='*.hpp' 'std::mutex\|std::lock_guard\|std::unique_lock' src \
  | grep -v 'common/thread_annotations.hpp'; then
  fail "raw std::mutex/lock in src/ (use eugene::Mutex + MutexLock so -Wthread-safety sees it)"
fi

# ---------------------------------------------------------------------------
if [ "$failures" -gt 0 ]; then
  printf '\nlint: %d failure(s)\n' "$failures" >&2
  exit 1
fi
printf '\nlint: OK\n'
