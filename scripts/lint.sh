#!/usr/bin/env bash
# Repo lint: format check + clang-tidy + project invariant checker.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir  a configured build tree with compile_commands.json
#              (default: build; only needed for the clang-tidy step)
#
# Outside CI, clang-format/clang-tidy steps are skipped with a warning when
# the tools are not installed (the invariant checker always runs), so the
# script is useful in minimal containers. With CI=true a missing tool is a
# hard failure — CI must never silently skip a gate.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
cd "$repo_root"

failures=0

note() { printf '== %s\n' "$*"; }
fail() {
  printf 'LINT FAIL: %s\n' "$*" >&2
  failures=$((failures + 1))
}
# A tool we cannot run: fatal in CI, skipped (with a note) locally.
missing_tool() {
  if [ "${CI:-}" = "true" ]; then
    fail "$1 (CI=true: missing tools are a hard failure)"
  else
    note "$1; skipping"
  fi
}

cxx_sources() {
  find src tests bench examples fuzz -type f \
    \( -name '*.cpp' -o -name '*.hpp' \) | sort
}

# clang-tidy covers every translation unit we compile: the library, the test
# suites, the benches, and the fuzz harnesses (tests/ and bench/ carry their
# own .clang-tidy with documented relaxations).
tidy_sources() {
  find src tests bench fuzz -type f -name '*.cpp' | sort
}

# ---------------------------------------------------------------------------
note "format check (.clang-format)"
if command -v clang-format > /dev/null 2>&1; then
  unformatted=$(cxx_sources | xargs clang-format --dry-run -Werror 2>&1 | head -40)
  if [ -n "$unformatted" ]; then
    printf '%s\n' "$unformatted"
    fail "clang-format found unformatted files (run: clang-format -i \$(git ls-files '*.cpp' '*.hpp'))"
  fi
else
  missing_tool "clang-format not installed"
fi

# ---------------------------------------------------------------------------
note "clang-tidy (.clang-tidy; src + tests + bench + fuzz)"
if command -v clang-tidy > /dev/null 2>&1; then
  if [ -f "$build_dir/compile_commands.json" ]; then
    if ! tidy_sources | xargs clang-tidy -p "$build_dir" --quiet; then
      fail "clang-tidy reported findings"
    fi
  else
    fail "no compile_commands.json in $build_dir (configure with cmake first)"
  fi
else
  missing_tool "clang-tidy not installed"
fi

# ---------------------------------------------------------------------------
# The grep ban list grew into a real checker: scripts/check_invariants.py
# (raw-mutex, unranked-mutex, throw-taxonomy, file-write, failpoint-registry,
# naked-new, using-namespace, stdout), with justified exceptions recorded in
# scripts/invariant_allowlist.json. See DESIGN.md §10.
note "project invariants (scripts/check_invariants.py)"
if command -v python3 > /dev/null 2>&1; then
  if ! python3 "$repo_root/scripts/check_invariants.py" --repo-root "$repo_root"; then
    fail "invariant checker reported violations"
  fi
else
  missing_tool "python3 not installed"
fi

# ---------------------------------------------------------------------------
if [ "$failures" -gt 0 ]; then
  printf '\nlint: %d failure(s)\n' "$failures" >&2
  exit 1
fi
printf '\nlint: OK\n'
