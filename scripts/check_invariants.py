#!/usr/bin/env python3
"""Project invariant checker (DESIGN.md §10 "Analysis & verification").

Enforces the repo-wide contracts that grep one-liners used to approximate:

  raw-mutex           no std::mutex / std::lock_guard / std::unique_lock /
                      std::scoped_lock in src/ outside the annotated wrapper
                      (common/thread_annotations.hpp) — otherwise Clang's
                      -Wthread-safety and the lock-rank checker are blind.
  unranked-mutex      every eugene::Mutex constructed in src/ names an
                      explicit LockRank (see common/lock_rank.hpp) so the
                      deadlock-order analysis covers the whole lock graph.
  throw-taxonomy      everything thrown from src/ derives from eugene::Error
                      (DESIGN.md §8) so fault paths catch one taxonomy.
  file-write          no file writes in src/ bypass the common/io atomic
                      writer (temp + fsync + rename is the only durable
                      commit primitive; DESIGN.md §9).
  failpoint-registry  the set of EUGENE_FAILPOINT / EUGENE_FAILPOINT_FIRED
                      string literals in src/ equals the registry in
                      common/failpoint_names.hpp, both directions, so chaos
                      jobs can never silently arm a renamed site.
  raw-sleep           no bare std::this_thread::sleep_for / sleep_until in
                      src/ — polling loops must wait on a CondVar (or a
                      channel) so cancellation, shutdown, and new work wake
                      them immediately. The few legitimate sleeps (injected
                      failpoint delays, backoff between retries) are
                      allowlisted with reasons.
  raw-timing          no ad-hoc std::chrono::{steady,system,high_resolution}_
                      clock::now() in src/ — time flows through common/clock
                      (Stopwatch/WallClock) and telemetry stamps events from
                      the caller's Clock, so tests can fake time and every
                      latency number shares one time base (DESIGN.md §12).
  naked-new           ownership goes through containers / make_unique.
  using-namespace     no `using namespace std` in headers.
  stdout              the library logs via EUGENE_LOG, not std::cout.
  no-direct-exit      no std::exit / abort / _Exit / quick_exit in src/
                      outside common/check.hpp — library code reports faults
                      through the eugene::Error taxonomy so the lifecycle
                      (DESIGN.md §13) can drain, flush journals, and commit a
                      final snapshot; only deliberate die-fast sites (e.g. the
                      lock-rank checker, whose whole point is to refuse to run
                      with a corrupted lock order) are allowlisted.

Justified exceptions live in scripts/invariant_allowlist.json, keyed by rule
and file with a required human reason; entries that no longer suppress
anything are reported as stale (so the allowlist cannot rot).

Usage: scripts/check_invariants.py [--repo-root DIR] [--list-rules]
Exit status: 0 clean, 1 violations or stale allowlist entries, 2 bad usage.

stdlib-only on purpose: this must run in CI and in bare containers.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

CXX_EXTS = {".cpp", ".hpp"}


# ---------------------------------------------------------------------------
# C++-aware text preparation
# ---------------------------------------------------------------------------

def strip_comments(text: str) -> str:
    """Replace // and /* */ comment bodies with spaces, preserving newlines
    (so line numbers survive) and string/char literals (so "http://x" is not
    mangled)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\" and nxt:
                out.append(c)
                out.append(nxt if nxt == "\n" else nxt)
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def mask_strings(code: str) -> str:
    """On comment-stripped text, blank out string/char literal *contents*
    (quotes stay) so rules never match inside messages."""
    out = []
    i, n = 0, len(code)
    state = "code"
    while i < n:
        c = code[i]
        nxt = code[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        else:
            quote = '"' if state == "str" else "'"
            if c == "\\" and nxt:
                out.append("  " if nxt != "\n" else " \n")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, repo_root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(repo_root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.splitlines()
        self.code = strip_comments(text)          # comments gone, strings kept
        self.masked = mask_strings(self.code)     # strings blanked too
        self.code_lines = self.code.splitlines()
        self.masked_lines = self.masked.splitlines()


class Violation:
    def __init__(self, rule: str, rel: str, line: int, message: str):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.message = message

    def key(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rules. Each takes the file list and yields Violations.
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable)\b")


def rule_raw_mutex(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            m = RAW_MUTEX_RE.search(line)
            if m:
                yield Violation(
                    "raw-mutex", f.rel, ln,
                    f"std::{m.group(1)} bypasses eugene::Mutex "
                    "(common/thread_annotations.hpp) — thread-safety analysis "
                    "and lock-rank checking cannot see it")


# A Mutex *declaration with an identifier* (not MutexLock, not `Mutex&` params,
# not the class definition, not constructor calls).
MUTEX_DECL_RE = re.compile(r"(?<![\w:])Mutex\s+([A-Za-z_]\w*)\s*([;{(])")


def rule_unranked_mutex(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for m in MUTEX_DECL_RE.finditer(f.masked):
            name, opener = m.group(1), m.group(2)
            line = f.masked.count("\n", 0, m.start()) + 1
            if opener == ";":
                yield Violation(
                    "unranked-mutex", f.rel, line,
                    f"Mutex {name} constructed without a LockRank "
                    "(see common/lock_rank.hpp rank registry)")
                continue
            # Statement runs to the matching `;` — LockRank:: must appear.
            stmt_end = f.masked.find(";", m.end())
            stmt = f.masked[m.start():stmt_end if stmt_end != -1 else None]
            if "LockRank::" not in stmt:
                yield Violation(
                    "unranked-mutex", f.rel, line,
                    f"Mutex {name} constructed without a LockRank "
                    "(see common/lock_rank.hpp rank registry)")


THROW_RE = re.compile(r"(?<![\w_])throw\s+([A-Za-z_0-9][\w:]*)")
ALLOWED_THROWN = re.compile(
    r"^(::)?(eugene::)?(Error|InvalidArgument|InternalError|TransportError|"
    r"FailpointError|CorruptionError|IoError|CancelledError)$")


def rule_throw_taxonomy(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for m in THROW_RE.finditer(f.masked):
            thrown = m.group(1)
            if ALLOWED_THROWN.match(thrown):
                continue
            line = f.masked.count("\n", 0, m.start()) + 1
            yield Violation(
                "throw-taxonomy", f.rel, line,
                f"throw of `{thrown}` — everything thrown from src/ must "
                "derive from eugene::Error (common/error.hpp, DESIGN.md §8)")


WRITE_FLAGS_RE = re.compile(r"O_WRONLY|O_RDWR|O_CREAT|O_TRUNC|O_APPEND")
FILE_WRITE_RES = [
    (re.compile(r"std::ofstream|std::fstream\b"), "std::ofstream"),
    (re.compile(r"(?<![\w_])fopen\s*\("), "fopen"),
]


def rule_file_write(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            for pat, what in FILE_WRITE_RES:
                if pat.search(line):
                    yield Violation(
                        "file-write", f.rel, ln,
                        f"{what} in src/ — durable writes must go through "
                        "common/io atomic_write_file (DESIGN.md §9)")
            if re.search(r"(?<![\w_])(::)?open\s*\(", line) and \
                    WRITE_FLAGS_RE.search(line):
                yield Violation(
                    "file-write", f.rel, ln,
                    "::open with write flags in src/ — durable writes must go "
                    "through common/io atomic_write_file (DESIGN.md §9)")


FAILPOINT_USE_RE = re.compile(r'EUGENE_FAILPOINT(?:_FIRED)?\s*\(\s*"([^"]+)"')
REGISTRY_NAME_RE = re.compile(r'"([^"]+)"')


def rule_failpoint_registry(files, repo_root: Path):
    registry_rel = "src/common/failpoint_names.hpp"
    registry_path = repo_root / registry_rel
    if not registry_path.exists():
        yield Violation("failpoint-registry", registry_rel, 1,
                        "registry header missing")
        return
    reg_code = strip_comments(
        registry_path.read_text(encoding="utf-8", errors="replace"))
    declared = set(REGISTRY_NAME_RE.findall(reg_code))

    used = {}  # name -> (rel, line)
    for f in files:
        if not f.rel.startswith("src/") or f.rel == registry_rel:
            continue
        for m in FAILPOINT_USE_RE.finditer(f.code):
            line = f.code.count("\n", 0, m.start()) + 1
            used.setdefault(m.group(1), (f.rel, line))

    for name in sorted(set(used) - declared):
        rel, line = used[name]
        yield Violation(
            "failpoint-registry", rel, line,
            f'failpoint "{name}" used but not declared in {registry_rel}')
    for name in sorted(declared - set(used)):
        yield Violation(
            "failpoint-registry", registry_rel, 1,
            f'failpoint "{name}" declared but no EUGENE_FAILPOINT site in '
            "src/ uses it (delete it here and from any CI spec arming it)")


RAW_SLEEP_RE = re.compile(r"std::this_thread::sleep_(for|until)\b")


def rule_raw_sleep(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            if RAW_SLEEP_RE.search(line):
                yield Violation(
                    "raw-sleep", f.rel, ln,
                    "raw sleep in src/ — wait on a CondVar/channel with a "
                    "timeout instead, so cancellation and new work wake the "
                    "loop immediately (allowlist genuinely timed sleeps)")


RAW_TIMING_RE = re.compile(
    r"std::chrono::(steady_clock|system_clock|high_resolution_clock)::now\b")


def rule_raw_timing(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            m = RAW_TIMING_RE.search(line)
            if m:
                yield Violation(
                    "raw-timing", f.rel, ln,
                    f"ad-hoc std::chrono::{m.group(1)}::now() — read time "
                    "through common/clock (Stopwatch/WallClock) so latency "
                    "numbers share one time base and tests can fake it "
                    "(allowlist the clock wrapper itself)")


NAKED_NEW_RE = re.compile(r"(^|[^\w_\.\"])new\s+[A-Za-z_:<]")


def rule_naked_new(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            if NAKED_NEW_RE.search(line):
                if ln <= len(f.raw_lines) and "NOLINT-new" in f.raw_lines[ln - 1]:
                    continue
                yield Violation(
                    "naked-new", f.rel, ln,
                    "naked `new` — use std::make_unique / containers "
                    "(allowlist genuinely placed uses)")


def rule_using_namespace(files):
    for f in files:
        if not (f.rel.startswith("src/") and f.rel.endswith(".hpp")):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            if re.search(r"using\s+namespace\s+std\b", line):
                yield Violation(
                    "using-namespace", f.rel, ln,
                    "`using namespace std` in a header pollutes every "
                    "includer")


# A process-exit call, optionally std:: / :: qualified. The lookbehind keeps
# identifiers like `early_exit(`, member calls `.exit(`, and `->abort(` out;
# masked lines keep strings and comments out.
DIRECT_EXIT_RE = re.compile(
    r"(?<![\w.>])((?:std::|::)?(?:exit|abort|_Exit|quick_exit))\s*\(")


def rule_direct_exit(files):
    for f in files:
        if not f.rel.startswith("src/") or f.rel == "src/common/check.hpp":
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            m = DIRECT_EXIT_RE.search(line)
            if m:
                yield Violation(
                    "no-direct-exit", f.rel, ln,
                    f"direct `{m.group(1)}` — library code must surface "
                    "faults via the eugene::Error taxonomy so the lifecycle "
                    "can drain and flush state (DESIGN.md §13); allowlist "
                    "deliberate die-fast sites with a reason")


def rule_stdout(files):
    for f in files:
        if not f.rel.startswith("src/"):
            continue
        for ln, line in enumerate(f.masked_lines, 1):
            if "std::cout" in line:
                yield Violation(
                    "stdout", f.rel, ln,
                    "std::cout in src/ — use EUGENE_LOG "
                    "(common/logging.hpp); stdout belongs to examples/bench")


RULES = {
    "raw-mutex": rule_raw_mutex,
    "unranked-mutex": rule_unranked_mutex,
    "throw-taxonomy": rule_throw_taxonomy,
    "file-write": rule_file_write,
    "failpoint-registry": rule_failpoint_registry,
    "raw-sleep": rule_raw_sleep,
    "raw-timing": rule_raw_timing,
    "naked-new": rule_naked_new,
    "using-namespace": rule_using_namespace,
    "stdout": rule_stdout,
    "no-direct-exit": rule_direct_exit,
}


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------

def load_allowlist(path: Path):
    if not path.exists():
        return []
    entries = json.loads(path.read_text(encoding="utf-8"))
    for i, e in enumerate(entries):
        for field in ("rule", "file", "reason"):
            if field not in e:
                raise SystemExit(
                    f"{path}: entry {i} missing required field '{field}'")
        if e["rule"] not in RULES:
            raise SystemExit(
                f"{path}: entry {i} names unknown rule '{e['rule']}' "
                f"(known: {', '.join(sorted(RULES))})")
        e["_hits"] = 0
    return entries


def allowed(entries, v: Violation, line_text: str) -> bool:
    for e in entries:
        if e["rule"] != v.rule or e["file"] != v.rel:
            continue
        if "contains" in e and e["contains"] not in line_text:
            continue
        e["_hits"] += 1
        return True
    return False


# ---------------------------------------------------------------------------

def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo-root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    repo_root = args.repo_root.resolve()
    if not (repo_root / "src").is_dir():
        print(f"check_invariants: no src/ under {repo_root}", file=sys.stderr)
        return 2

    files = []
    for sub in ("src",):
        for p in sorted((repo_root / sub).rglob("*")):
            if p.suffix in CXX_EXTS and p.is_file():
                files.append(SourceFile(repo_root, p))

    entries = load_allowlist(repo_root / "scripts" / "invariant_allowlist.json")

    violations = []
    for name, rule in RULES.items():
        produced = (rule(files, repo_root) if name == "failpoint-registry"
                    else rule(files))
        for v in produced:
            src = next((f for f in files if f.rel == v.rel), None)
            line_text = ""
            if src and 1 <= v.line <= len(src.code_lines):
                line_text = src.code_lines[v.line - 1].strip()
            if not allowed(entries, v, line_text):
                violations.append((v, line_text))

    for v, line_text in sorted(violations, key=lambda t: t[0].key()):
        print(f"INVARIANT FAIL: {v.key()}")
        if line_text:
            print(f"    {line_text}")

    stale = [e for e in entries if e["_hits"] == 0]
    for e in stale:
        print("STALE ALLOWLIST ENTRY: "
              f"[{e['rule']}] {e['file']}"
              + (f" (contains: {e['contains']!r})" if "contains" in e else "")
              + " no longer suppresses anything — delete it "
              f"(reason was: {e['reason']})")

    n_checked = len(files)
    if violations or stale:
        print(f"\ncheck_invariants: {len(violations)} violation(s), "
              f"{len(stale)} stale allowlist entr(y/ies) "
              f"across {n_checked} files", file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({n_checked} files, "
          f"{len(RULES)} rules, {len(entries)} allowlisted exceptions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
