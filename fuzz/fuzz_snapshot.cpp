// Fuzz harness: snapshot MANIFEST + artifact decoding (serving/snapshot).
//
// Typed-error contract (DESIGN.md §10): arbitrary bytes presented as a
// snapshot manifest or a model-artifacts payload are either decoded or
// rejected with a typed CorruptionError — bad magic, bad CRC, truncation,
// implausible model counts, inconsistent curve geometry, and mixed-snapshot
// stage counts are all *expected* outcomes. Restore must never build
// garbage serving state or die untyped.
//
// Each input is interpreted three ways so one corpus covers every decode
// layer: as a raw manifest payload, as a raw artifacts payload, and as a
// full CRC-framed blob container holding a manifest.
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/io.hpp"
#include "nn/staged_model.hpp"
#include "serving/snapshot.hpp"

namespace {

// Mirrors kManifestMagic in serving/snapshot.cpp ("EUGM", little-endian).
constexpr std::uint32_t kManifestMagic = 0x4D475545;
constexpr std::uint32_t kManifestVersion = 1;

eugene::serving::ModelEntry& fuzz_entry() {
  static eugene::serving::ModelEntry entry = [] {
    eugene::nn::StagedResNetConfig cfg;
    cfg.in_channels = 2;
    cfg.height = 8;
    cfg.width = 8;
    cfg.num_classes = 4;
    cfg.stage_channels = {3, 4};
    cfg.head_hidden = 8;
    cfg.seed = 1;
    return eugene::serving::ModelEntry("fuzz", eugene::nn::build_staged_resnet(cfg));
  }();
  // A previous iteration may have restored artifacts into the entry; reset
  // the mutable fields so every input decodes against the same baseline.
  entry.costs.stage_ms.clear();
  entry.calibration_alpha.clear();
  entry.calibrated = false;
  return entry;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    (void)eugene::serving::detail::decode_manifest_payload(bytes);
  } catch (const eugene::CorruptionError&) {
  }
  try {
    eugene::serving::detail::decode_artifacts_payload(bytes, fuzz_entry(),
                                                      "fuzz artifacts");
  } catch (const eugene::CorruptionError&) {
  }
  try {
    const eugene::io::Blob blob = eugene::io::decode_blob(
        bytes, kManifestMagic, kManifestVersion, "fuzz manifest blob");
    (void)eugene::serving::detail::decode_manifest_payload(blob.payload);
  } catch (const eugene::CorruptionError&) {
  }
  return 0;
}
