// Standalone corpus-replay driver.
//
// The fuzz harnesses are written against the libFuzzer entry point
// (LLVMFuzzerTestOneInput). When the toolchain has libFuzzer (Clang, the
// `fuzz` preset) CMake links -fsanitize=fuzzer and this file is left out;
// everywhere else — including the GCC tier-1 presets — this main() stands in,
// replaying every file named on the command line (directories recurse) so
// ctest exercises the whole committed corpus in every configuration.
//
// Exit status: 0 when every input replayed without crashing (typed eugene
// errors are the *expected* outcome for damaged inputs and count as success);
// 1 on usage errors or unreadable paths. A contract violation — UB, an
// untyped exception, an abort — kills the process, which is exactly the
// signal ctest needs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

bool replay_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 1;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<fs::path> files;
      for (const auto& de : fs::recursive_directory_iterator(arg, ec))
        if (de.is_regular_file()) files.push_back(de.path());
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& f : files) {
        if (!replay_file(f)) return 1;
        ++replayed;
      }
    } else if (fs::is_regular_file(arg, ec)) {
      if (!replay_file(arg)) return 1;
      ++replayed;
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n", argv[i]);
      return 1;
    }
  }
  std::printf("replayed %zu corpus input(s), no contract violations\n", replayed);
  return 0;
}
