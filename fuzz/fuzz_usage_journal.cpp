// Fuzz harness: usage-journal replay (serving/usage).
//
// Typed-error contract (DESIGN.md §10): replaying an arbitrary journal image
// yields applied frames (possibly zero, possibly with the torn-tail flag) or
// a typed CorruptionError — bad magic, future version, mid-file CRC damage,
// and semantically invalid committed frames are all *expected* outcomes.
// The billing ledger must never be corrupted silently, hang, or crash.
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "serving/usage.hpp"

namespace {

eugene::serving::UsageMeter& fuzz_meter() {
  static eugene::serving::UsageMeter meter = [] {
    eugene::sched::StageCostModel costs;
    costs.stage_ms = {1.0, 2.0, 3.0};
    return eugene::serving::UsageMeter(costs, {"free", "standard", "premium"});
  }();
  return meter;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    (void)fuzz_meter().replay_journal_image(bytes, "fuzz input");
  } catch (const eugene::CorruptionError&) {
    // damaged journal, rejected typed — the contract holding
  }
  return 0;
}
