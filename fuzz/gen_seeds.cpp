// Seed-corpus generator for the fuzz harnesses.
//
// Emits one directory per harness under the output root:
//
//   <out>/serialize/      EUG1 + EUG2 checkpoints, valid and damaged
//   <out>/snapshot/       manifest payloads/blobs and artifacts payloads
//   <out>/usage_journal/  journal images: valid, torn tail, mid-file damage
//   <out>/fifo_frame/     CRC-framed byte streams, valid and hostile
//
// Valid seeds are produced by the production encoders (save_params,
// save_snapshot) wherever one exists, so the corpus tracks format changes
// instead of fossilizing a hand-rolled copy. Damaged variants are then
// derived from the valid bytes: truncation, bit flips, hostile length
// prefixes — each one a shape the decoders advertise a typed error for.
//
// Usage: gen_seeds <output-root>   (directories are created; files overwrite)
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/io.hpp"
#include "nn/serialize.hpp"
#include "nn/staged_model.hpp"
#include "serving/registry.hpp"
#include "serving/snapshot.hpp"

namespace {

namespace fs = std::filesystem;
using eugene::crc32;
using eugene::io::ByteWriter;

// Wire magics mirrored from the decoders (serialize.cpp, snapshot.cpp,
// usage.cpp). gen_seeds only *writes* corpus files; the replay tests prove
// the real decoders still accept/reject these bytes as intended.
constexpr std::uint32_t kCkptMagicV1 = 0x45554731;      // "EUG1"
constexpr std::uint32_t kCkptMagicV2 = 0x45554732;      // "EUG2"
constexpr std::uint32_t kManifestMagic = 0x4D475545;    // "EUGM"
constexpr std::uint32_t kJournalMagic = 0x4A475545;     // "EUGJ"
constexpr std::uint32_t kJournalVersion = 1;

fs::path g_out_root;

void write_seed(const std::string& harness, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  const fs::path dir = g_out_root / harness;
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::fprintf(stderr, "gen_seeds: write failed: %s\n", path.c_str());
    std::exit(1);
  }
}

std::vector<std::uint8_t> flip_byte(std::vector<std::uint8_t> bytes, std::size_t at) {
  if (at < bytes.size()) bytes[at] ^= 0xFF;
  return bytes;
}

std::vector<std::uint8_t> truncate_to(std::vector<std::uint8_t> bytes, std::size_t n) {
  if (n < bytes.size()) bytes.resize(n);
  return bytes;
}

eugene::nn::StagedModel tiny_model() {
  eugene::nn::StagedResNetConfig cfg;
  cfg.in_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.num_classes = 4;
  cfg.stage_channels = {3, 4};
  cfg.head_hidden = 8;
  cfg.seed = 1;
  return eugene::nn::build_staged_resnet(cfg);
}

// ---------------------------------------------------------------------------
// serialize: EUG1/EUG2 checkpoints for fuzz_serialize
// ---------------------------------------------------------------------------
void gen_serialize() {
  eugene::nn::StagedModel model = tiny_model();
  const auto params = model.params();

  std::ostringstream v2s(std::ios::binary);
  eugene::nn::save_params(params, v2s);
  const std::string v2str = v2s.str();
  const std::vector<std::uint8_t> v2(v2str.begin(), v2str.end());
  write_seed("serialize", "v2_valid", v2);
  write_seed("serialize", "v2_truncated", truncate_to(v2, v2.size() / 2));
  write_seed("serialize", "v2_body_bitflip", flip_byte(v2, 40));
  write_seed("serialize", "v2_bad_magic", flip_byte(v2, 0));
  write_seed("serialize", "v2_header_only", truncate_to(v2, 16));

  // Future version: decoders must refuse it typed, not misparse the body.
  {
    auto bytes = v2;
    bytes[4] = 9;
    write_seed("serialize", "v2_future_version", bytes);
  }
  // Hostile body length: claims far more than the stream holds.
  {
    ByteWriter w;
    w.u32(kCkptMagicV2);
    w.u32(2);
    w.u64(std::uint64_t{1} << 40);
    w.u32(0xABCD);
    write_seed("serialize", "v2_hostile_body_len", w.take());
  }

  // Legacy v1: magic + count, then per tensor rank + dims + raw floats.
  {
    ByteWriter w;
    w.u32(kCkptMagicV1);
    w.u32(static_cast<std::uint32_t>(params.size()));
    for (const auto& p : params) {
      const auto& shape = p.value->shape();
      w.u32(static_cast<std::uint32_t>(shape.size()));
      for (std::size_t d : shape) w.u32(static_cast<std::uint32_t>(d));
      w.raw(p.value->raw(), p.value->numel() * sizeof(float));
    }
    const std::vector<std::uint8_t> v1 = w.take();
    write_seed("serialize", "v1_valid", v1);
    write_seed("serialize", "v1_truncated_tensor", truncate_to(v1, v1.size() - 7));
    write_seed("serialize", "v1_count_mismatch", flip_byte(v1, 4));
  }

  write_seed("serialize", "empty", {});
}

// ---------------------------------------------------------------------------
// snapshot: manifest blobs/payloads and artifacts payloads for fuzz_snapshot
// ---------------------------------------------------------------------------
void gen_snapshot() {
  // Produce a real snapshot with the production writer, then lift the
  // manifest blob and the per-model payloads out of it.
  eugene::serving::ModelRegistry registry;
  (void)registry.add("seed", tiny_model());
  const fs::path snapdir = g_out_root / ".snapshot_tmp";
  fs::create_directories(snapdir);
  (void)eugene::serving::save_snapshot(registry, snapdir.string());

  const std::vector<std::uint8_t> manifest_file =
      eugene::io::read_file_bytes((snapdir / "MANIFEST").string());
  write_seed("snapshot", "manifest_blob_valid", manifest_file);
  write_seed("snapshot", "manifest_blob_bitflip", flip_byte(manifest_file, 12));
  write_seed("snapshot", "manifest_blob_truncated",
             truncate_to(manifest_file, manifest_file.size() / 2));

  const eugene::io::Blob manifest_blob = eugene::io::decode_blob(
      manifest_file, kManifestMagic, 1, "gen_seeds manifest");
  write_seed("snapshot", "manifest_payload_valid", manifest_blob.payload);

  // A model count the payload cannot hold: the decoder's capacity check.
  {
    ByteWriter w;
    w.u64(1);                          // epoch
    w.u64(std::uint64_t{1} << 50);     // model count
    write_seed("snapshot", "manifest_hostile_count", w.take());
  }

  // Artifacts payload from the real artifacts file, if present.
  for (const auto& de : fs::directory_iterator(snapdir)) {
    const std::string fname = de.path().filename().string();
    if (fname.find("artifacts") == std::string::npos) continue;
    const std::vector<std::uint8_t> art_file =
        eugene::io::read_file_bytes(de.path().string());
    const eugene::io::Blob art_blob = eugene::io::decode_blob(
        art_file, 0x41475545 /* "EUGA" */, 1, "gen_seeds artifacts");
    write_seed("snapshot", "artifacts_payload_valid", art_blob.payload);
    write_seed("snapshot", "artifacts_payload_bitflip", flip_byte(art_blob.payload, 1));
    break;
  }

  // Calibrated flag set but zero curve stages: semantic-validation path.
  {
    ByteWriter w;
    w.u8(1);
    w.u64(0);
    w.f64_vec({});
    w.f64(0.0);
    w.f64_vec({});
    write_seed("snapshot", "artifacts_calibrated_no_curves", w.take());
  }
  // Prior count disagreeing with the curve stage count.
  {
    ByteWriter w;
    w.u8(1);
    w.u64(2);             // curve_stages
    w.f64_vec({0.5});     // one prior for two stages
    w.u64(1);             // num_pairs
    w.f64(0.0);
    w.f64(1.0);
    w.f64_vec({0.1, 0.9});
    w.f64_vec({1.0, 2.0});
    w.f64(0.05);
    w.f64_vec({});
    write_seed("snapshot", "artifacts_prior_count_mismatch", w.take());
  }
  // Pair count exceeding what the payload can hold.
  {
    ByteWriter w;
    w.u8(1);
    w.u64(2);
    w.f64_vec({0.5, 0.5});
    w.u64(std::uint64_t{1} << 48);
    write_seed("snapshot", "artifacts_hostile_pair_count", w.take());
  }

  write_seed("snapshot", "empty", {});
  fs::remove_all(snapdir);
}

// ---------------------------------------------------------------------------
// usage_journal: EUGJ images for fuzz_usage_journal
// ---------------------------------------------------------------------------

// One journal frame: u64 touched-class count, then per class the column
// deltas (u32 class, u64 requests, u64 stages, f64 compute_ms, u64 expired,
// u64 early_exits, u64 shed, u64 retries), CRC-framed as [len][crc][payload].
std::vector<std::uint8_t> journal_frame(std::uint32_t cls, std::uint64_t requests,
                                        std::uint64_t stages, double compute_ms) {
  ByteWriter p;
  p.u64(1);
  p.u32(cls);
  p.u64(requests);
  p.u64(stages);
  p.f64(compute_ms);
  p.u64(0);  // expired
  p.u64(1);  // early_exits
  p.u64(0);  // shed
  p.u64(0);  // retries
  const std::vector<std::uint8_t> payload = p.take();
  ByteWriter f;
  f.u32(static_cast<std::uint32_t>(payload.size()));
  f.u32(crc32(payload.data(), payload.size()));
  f.raw(payload.data(), payload.size());
  return f.take();
}

void gen_usage_journal() {
  ByteWriter header;
  header.u32(kJournalMagic);
  header.u32(kJournalVersion);
  const std::vector<std::uint8_t> hdr = header.take();

  std::vector<std::uint8_t> valid = hdr;
  for (std::uint32_t c = 0; c < 3; ++c) {
    const auto frame = journal_frame(c, 10 + c, 20 + c, 1.5 * (c + 1));
    valid.insert(valid.end(), frame.begin(), frame.end());
  }
  write_seed("usage_journal", "valid_three_frames", valid);
  write_seed("usage_journal", "header_only", hdr);
  write_seed("usage_journal", "torn_tail", truncate_to(valid, valid.size() - 5));
  write_seed("usage_journal", "midfile_crc_damage", flip_byte(valid, hdr.size() + 12));
  write_seed("usage_journal", "bad_magic", flip_byte(valid, 0));
  write_seed("usage_journal", "future_version", flip_byte(valid, 4));

  // Committed frame naming a class the meter does not have: semantic check.
  {
    std::vector<std::uint8_t> img = hdr;
    const auto frame = journal_frame(250, 1, 1, 1.0);
    img.insert(img.end(), frame.begin(), frame.end());
    write_seed("usage_journal", "unknown_class", img);
  }
  // Hostile frame length prefix with a matching-CRC claim.
  {
    std::vector<std::uint8_t> img = hdr;
    ByteWriter f;
    f.u32(0xFFFFFFF0);
    f.u32(0xDEADBEEF);
    const auto frame = f.take();
    img.insert(img.end(), frame.begin(), frame.end());
    write_seed("usage_journal", "hostile_frame_len", img);
  }
  write_seed("usage_journal", "empty", {});
  write_seed("usage_journal", "short_header", truncate_to(hdr, 5));
}

// ---------------------------------------------------------------------------
// fifo_frame: CRC-framed streams for fuzz_fifo_frame
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> fifo_frame(const std::vector<std::uint8_t>& payload) {
  ByteWriter f;
  f.u32(static_cast<std::uint32_t>(payload.size()));
  f.u32(crc32(payload.data(), payload.size()));
  f.raw(payload.data(), payload.size());
  return f.take();
}

void gen_fifo_frame() {
  // A StageReport payload: task_id, stage, predicted_label, confidence.
  ByteWriter rep;
  rep.u32(7);  // task_id
  rep.u32(2);  // stage
  rep.u32(1);  // predicted_label
  const float confidence = 0.93f;
  rep.raw(&confidence, sizeof(confidence));
  const std::vector<std::uint8_t> report = rep.take();

  const auto one = fifo_frame(report);
  write_seed("fifo_frame", "one_report", one);

  std::vector<std::uint8_t> three;
  for (int i = 0; i < 3; ++i) three.insert(three.end(), one.begin(), one.end());
  write_seed("fifo_frame", "three_reports", three);

  write_seed("fifo_frame", "crc_mismatch", flip_byte(one, 8));
  write_seed("fifo_frame", "torn_header", truncate_to(one, 3));
  write_seed("fifo_frame", "torn_payload", truncate_to(one, one.size() - 2));
  write_seed("fifo_frame", "empty_payload", fifo_frame({}));
  {
    ByteWriter w;
    w.u32(0xFFFFFFF0);  // oversized length prefix
    w.u32(0);
    write_seed("fifo_frame", "oversized_len", w.take());
  }
  write_seed("fifo_frame", "empty", {});
  // Valid frame followed by a torn one: partial-stream handling.
  {
    auto mix = one;
    const auto torn = truncate_to(one, 6);
    mix.insert(mix.end(), torn.begin(), torn.end());
    write_seed("fifo_frame", "valid_then_torn", mix);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 1;
  }
  g_out_root = argv[1];
  gen_serialize();
  gen_snapshot();
  gen_usage_journal();
  gen_fifo_frame();
  std::printf("seed corpora written under %s\n", g_out_root.string().c_str());
  return 0;
}
