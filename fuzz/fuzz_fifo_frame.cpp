// Fuzz harness: FIFO transport frame parsing (common/fifo_channel).
//
// Typed-error contract (DESIGN.md §10): an arbitrary byte stream fed to the
// wire-format decoder yields whole frames or a typed TransportError — a torn
// header, an oversized length prefix, a truncated payload, and a CRC
// mismatch are all *expected* outcomes. Decoded payloads then flow through
// StageReport::decode, which must accept or reject (nullopt) without UB.
#include <cstdint>

#include "common/error.hpp"
#include "common/fifo_channel.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  // The live transport's default is 64 MiB; fuzz with a small cap so a
  // hostile length prefix is exercised without giant allocations dominating.
  constexpr std::size_t kMaxFrameBytes = 1u << 20;
  try {
    const auto frames = eugene::fifo_wire::decode_stream(data, size, kMaxFrameBytes);
    for (const auto& payload : frames) {
      // Well-framed payloads must decode or be rejected cleanly, never UB.
      (void)eugene::StageReport::decode(payload);
    }
  } catch (const eugene::TransportError&) {
    // damaged stream, rejected typed — the contract holding
  }
  return 0;
}
