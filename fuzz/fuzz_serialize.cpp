// Fuzz harness: nn/serialize checkpoint decoding (EUG1 legacy + EUG2).
//
// Typed-error contract (DESIGN.md §10): feeding load_params arbitrary bytes
// yields either a successful load or a typed eugene error —
// CorruptionError for damaged streams, InvalidArgument for intact streams
// that do not match the architecture. Anything else (UB, abort, an untyped
// exception, unbounded allocation) is a finding.
#include <cstdint>
#include <sstream>

#include "common/error.hpp"
#include "nn/serialize.hpp"
#include "nn/staged_model.hpp"

namespace {

eugene::nn::StagedModel& fuzz_model() {
  static eugene::nn::StagedModel model = [] {
    eugene::nn::StagedResNetConfig cfg;
    cfg.in_channels = 2;
    cfg.height = 8;
    cfg.width = 8;
    cfg.num_classes = 4;
    cfg.stage_channels = {3, 4};
    cfg.head_hidden = 8;
    cfg.seed = 1;
    return eugene::nn::build_staged_resnet(cfg);
  }();
  return model;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream in(bytes, std::ios::binary);
  try {
    eugene::nn::load_params(fuzz_model().params(), in);
  } catch (const eugene::CorruptionError&) {
    // damaged stream, rejected typed — the contract holding
  } catch (const eugene::InvalidArgument&) {
    // intact stream, wrong architecture — also within contract
  }
  return 0;
}
